//! The memo: a hash-consed AND-OR DAG (LQDAG).
//!
//! Equivalence nodes ([`GroupId`]) are the OR-nodes; operator nodes
//! ([`ExprId`], an operator plus child groups) are the AND-nodes. Inserting
//! a logical expression hash-conses on `(operator, child groups)`: two
//! queries in a batch that contain the same subexpression land on the same
//! group automatically — this is the common-subexpression identification of
//! Section 2.2 ("a single bottom-up traversal of the LQDAG by using the
//! memo structure").
//!
//! # Interned storage
//!
//! Operator payloads (predicates, aggregate specs) are interned once into a
//! dense operator arena: every expression stores a 4-byte `OpId`, and the
//! hash-consing index is keyed on `(OpId, children)` — so the deep hash of
//! a predicate is paid once per *distinct* operator, while the per-insert
//! probe and every merge-time re-hash touch only small integer keys.
//! Expression children live in one flat arena (`ExprId` → offset range),
//! so the memo performs no per-expression heap allocation beyond the
//! arenas themselves.
//!
//! Transformation rules may discover that two existing groups are equal
//! (e.g. associativity produces `A⋈(B⋈C)` inside the group built from
//! `(A⋈B)⋈C`, while another query contributed `A⋈(B⋈C)` elsewhere). Groups
//! are then merged through a union-find, re-hashing affected parents and
//! cascading further merges — the "unification" of Roy et al.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use crate::context::{ColId, DagContext};
use crate::logical::{compute_props, Leaf, LogicalOp, LogicalProps, PlanNode};

/// An equivalence node (OR-node) in the DAG.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub u32);

/// An operator node (AND-node) in the DAG.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(pub u32);

/// An interned operator payload (index into the operator arena).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct OpId(u32);

/// A borrowed view of an operator node: interned operator plus the child
/// slice in the flat children arena.
#[derive(Clone, Copy, Debug)]
pub struct MExpr<'m> {
    pub op: &'m LogicalOp,
    pub children: &'m [GroupId],
}

#[derive(Debug)]
struct GroupData {
    exprs: Vec<ExprId>,
    /// Operator nodes having this group among their children.
    parents: Vec<ExprId>,
    props: LogicalProps,
}

/// Mutation log consumed by the expansion fixpoint (`rules::expand`):
/// which groups gained member expressions and which expressions had their
/// child lists rewritten by a merge. Only recorded while a log is active.
#[derive(Debug, Default)]
pub(crate) struct ChangeLog {
    active: bool,
    /// Groups that gained at least one expression (insert into an existing
    /// target, or a merge transferring the dropped group's expressions).
    grown: Vec<GroupId>,
    /// Live expressions whose children were rewritten during a merge.
    rewritten: Vec<ExprId>,
}

/// A summary of every structural mutation between [`Memo::delta_begin`]
/// and [`Memo::delta_take`]: the promotion of the expansion change log
/// into a consumer-facing delta API. Batch-level bookkeeping (reference
/// counts, the shareable universe) is recomputed *from* this delta after
/// an evolution step instead of rescanning the memo.
#[derive(Clone, Debug, Default)]
pub struct MemoDelta {
    /// Expression slots allocated when the window opened; every id in
    /// `exprs_before..exprs_after` was interned inside the window.
    pub exprs_before: usize,
    /// Expression slots allocated when the window closed.
    pub exprs_after: usize,
    /// Group slots allocated when the window opened.
    pub groups_before: usize,
    /// Group slots allocated when the window closed.
    pub groups_after: usize,
    /// Group unions applied, as `(kept, dropped)` representatives at merge
    /// time, in application order.
    pub merges: Vec<(GroupId, GroupId)>,
    /// Groups that gained member expressions (targeted inserts and merge
    /// transfers).
    pub grown: Vec<GroupId>,
    /// Expressions tombstoned inside the window (merge duplicates,
    /// self-references, retired batch roots). Ids below `exprs_before` were
    /// live when the window opened.
    pub tombstoned: Vec<ExprId>,
}

impl MemoDelta {
    /// The expressions interned inside the window (some may have been
    /// tombstoned again before the window closed).
    pub fn new_exprs(&self) -> impl Iterator<Item = ExprId> + '_ {
        (self.exprs_before as u32..self.exprs_after as u32).map(ExprId)
    }

    /// Whether the window saw no structural change at all.
    pub fn is_empty(&self) -> bool {
        self.exprs_before == self.exprs_after
            && self.groups_before == self.groups_after
            && self.merges.is_empty()
            && self.tombstoned.is_empty()
    }
}

/// A watermark over every memo arena plus a position in the undo log;
/// handed out by [`Memo::savepoint`] and consumed by [`Memo::truncate_to`]
/// / [`Memo::release`]. Savepoints form a stack: rolling back to one
/// invalidates every savepoint taken after it.
#[derive(Clone, Debug)]
pub struct Savepoint {
    /// Unique id, validated against the memo's savepoint stack so a stale
    /// token (from a rolled-back or reset lineage) can never rewind into a
    /// rewritten undo log.
    serial: u64,
    depth: usize,
    n_groups: usize,
    n_exprs: usize,
    n_child_arena: usize,
    n_ops: usize,
    n_roots: usize,
    undo_len: usize,
}

/// One reversible mutation of pre-existing memo state, recorded while at
/// least one savepoint is outstanding. Appends to the arenas are *not*
/// logged — [`Memo::truncate_to`] drops them by watermark — so the log
/// only carries the in-place writes `Memo::merge` and targeted inserts
/// perform.
#[derive(Debug)]
enum Undo {
    /// A merge unioned `slot` away (`uf[slot]` pointed at itself before).
    UfSet { slot: u32 },
    /// A merge moved `drop`'s expressions onto the tail of `keep.exprs`
    /// (starting at `old_len`) and re-owned them.
    ExprsMoved {
        keep: GroupId,
        drop: GroupId,
        old_len: u32,
    },
    /// A merge took `drop.parents` wholesale.
    ParentsTaken { drop: GroupId, parents: Vec<ExprId> },
    /// One expression was pushed onto `group.parents`.
    ParentPushed { group: GroupId },
    /// One expression was pushed onto `group.exprs` (targeted insert).
    ExprPushed { group: GroupId },
    /// A live expression was tombstoned and/or had its stored children
    /// rewritten in place. `now_indexed` records whether the rewrite left a
    /// fresh `(op, children)` entry in the hash-consing index that must be
    /// removed before the old key is restored.
    Rewritten {
        e: ExprId,
        old_children: Vec<GroupId>,
        was_killed: bool,
        now_indexed: bool,
    },
    /// An insert registered a new producer column.
    ProducerInserted(ColId),
    /// The cached batch-root group changed.
    BatchRootSet { old: Option<GroupId> },
}

/// The memo structure.
#[derive(Debug)]
pub struct Memo {
    ctx: DagContext,
    groups: Vec<GroupData>,
    /// Union-find over groups (index = GroupId.0).
    uf: Vec<u32>,
    /// Interned operator arena; `op_index` maps each distinct operator to
    /// its dense id (the one deep hash per insert happens here).
    ops: Vec<LogicalOp>,
    op_index: HashMap<LogicalOp, OpId>,
    /// Per-expression interned operator.
    expr_op: Vec<OpId>,
    /// Flat children arena: expression `e` owns
    /// `child_arena[child_off[e] .. child_off[e+1]]`.
    child_off: Vec<u32>,
    child_arena: Vec<GroupId>,
    /// Liveness: duplicates produced by merges are tombstoned.
    alive: Vec<bool>,
    group_of: Vec<GroupId>,
    /// Hash-consing index over `(interned op, child groups)`.
    index: HashMap<(OpId, Vec<GroupId>), ExprId>,
    /// Synthetic column -> aggregate group producing it.
    producers: HashMap<ColId, GroupId>,
    /// Query roots, in insertion order.
    roots: Vec<GroupId>,
    /// Expansion change log (inactive outside `rules::expand`).
    log: ChangeLog,
    /// Open delta window, if any (see [`Memo::delta_begin`]).
    delta: Option<MemoDelta>,
    /// Reversible in-place mutations, recorded while a savepoint is
    /// outstanding; replayed newest-first by [`Memo::truncate_to`].
    undo: Vec<Undo>,
    /// Serials of outstanding savepoints, oldest first.
    sp_stack: Vec<u64>,
    next_sp_serial: u64,
    /// Monotone mutation counter: bumped on every new expression, union,
    /// tombstone, truncation, and reset. Never decreases — two distinct
    /// memo states observed by a consumer can never share a version, which
    /// is what makes it safe as a compile-cache fingerprint component.
    version: u64,
    /// The group produced by [`Memo::build_batch_root`], if built.
    batch_root: Option<GroupId>,
    /// Scratch child-list buffer reused by the merge-cascade rehash loops,
    /// so probing/removing `index` entries does not allocate per rehash;
    /// ownership moves into the index only on an actual vacant insert.
    rehash_key: Vec<GroupId>,
}

impl Memo {
    /// Creates an empty memo over a context.
    pub fn new(ctx: DagContext) -> Self {
        Memo {
            ctx,
            groups: Vec::new(),
            uf: Vec::new(),
            ops: Vec::new(),
            op_index: HashMap::new(),
            expr_op: Vec::new(),
            child_off: vec![0],
            child_arena: Vec::new(),
            alive: Vec::new(),
            group_of: Vec::new(),
            index: HashMap::new(),
            producers: HashMap::new(),
            roots: Vec::new(),
            log: ChangeLog::default(),
            delta: None,
            undo: Vec::new(),
            sp_stack: Vec::new(),
            next_sp_serial: 0,
            version: 0,
            batch_root: None,
            rehash_key: Vec::new(),
        }
    }

    /// Monotone mutation counter (see the field docs); suitable as a delta
    /// epoch in compile-cache fingerprints.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Whether in-place mutations must be recorded for rollback.
    #[inline]
    fn recording(&self) -> bool {
        !self.sp_stack.is_empty()
    }

    /// The shared context.
    pub fn ctx(&self) -> &DagContext {
        &self.ctx
    }

    /// Canonical representative of a group.
    pub fn find(&self, g: GroupId) -> GroupId {
        let mut cur = g.0;
        while self.uf[cur as usize] != cur {
            cur = self.uf[cur as usize];
        }
        GroupId(cur)
    }

    /// Number of group slots allocated (including merged-away ones).
    pub fn n_group_slots(&self) -> usize {
        self.groups.len()
    }

    /// Number of live (representative) groups.
    pub fn n_groups(&self) -> usize {
        (0..self.groups.len())
            .filter(|&i| self.uf[i] == i as u32)
            .count()
    }

    /// Number of live operator nodes.
    pub fn n_exprs(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Number of expression slots allocated (including tombstones); grows
    /// monotonically, which the expansion fixpoint loop relies on.
    pub fn exprs_allocated(&self) -> usize {
        self.expr_op.len()
    }

    /// Number of distinct interned operator payloads.
    pub fn n_interned_ops(&self) -> usize {
        self.ops.len()
    }

    /// All live expression ids (stable iteration order).
    pub fn expr_ids(&self) -> impl Iterator<Item = ExprId> + '_ {
        (0..self.expr_op.len() as u32)
            .map(ExprId)
            .filter(|e| self.alive[e.0 as usize])
    }

    /// The expression data (borrowed view into the arenas).
    #[inline]
    pub fn expr(&self, e: ExprId) -> MExpr<'_> {
        MExpr {
            op: self.op(e),
            children: self.children(e),
        }
    }

    /// The expression's operator.
    #[inline]
    pub fn op(&self, e: ExprId) -> &LogicalOp {
        &self.ops[self.expr_op[e.0 as usize].0 as usize]
    }

    /// The expression's child groups (representatives as of the last
    /// rewrite).
    #[inline]
    pub fn children(&self, e: ExprId) -> &[GroupId] {
        let s = self.child_off[e.0 as usize] as usize;
        let t = self.child_off[e.0 as usize + 1] as usize;
        &self.child_arena[s..t]
    }

    /// Whether the expression survived merging (not a tombstoned duplicate).
    pub fn is_alive(&self, e: ExprId) -> bool {
        self.alive[e.0 as usize]
    }

    /// The group owning an expression.
    pub fn group_of(&self, e: ExprId) -> GroupId {
        self.find(self.group_of[e.0 as usize])
    }

    /// Live expressions of a group.
    pub fn group_exprs(&self, g: GroupId) -> impl Iterator<Item = ExprId> + '_ {
        let g = self.find(g);
        self.groups[g.0 as usize]
            .exprs
            .iter()
            .copied()
            .filter(|e| self.alive[e.0 as usize])
    }

    /// Live parent expressions of a group (operator nodes having it as a
    /// child), deduplicated.
    pub fn group_parents(&self, g: GroupId) -> Vec<ExprId> {
        let g = self.find(g);
        let mut out: Vec<ExprId> = self.groups[g.0 as usize]
            .parents
            .iter()
            .copied()
            .filter(|e| self.alive[e.0 as usize])
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Logical properties of a group.
    pub fn props(&self, g: GroupId) -> &LogicalProps {
        let g = self.find(g);
        &self.groups[g.0 as usize].props
    }

    /// The aggregate group producing a synthetic column, if registered.
    pub fn producer(&self, col: ColId) -> Option<GroupId> {
        self.producers.get(&col).map(|&g| self.find(g))
    }

    /// Whether group `g`'s output exposes column `col`. Base columns are
    /// exposed by their instance leaf or by an aggregate leaf grouping on
    /// them (group-by columns pass through aggregation); synthetic columns
    /// by the aggregate leaf producing them.
    pub fn group_covers(&self, g: GroupId, col: ColId) -> bool {
        let g = self.find(g);
        for leaf in &self.groups[g.0 as usize].props.leaves {
            match (leaf, col) {
                (Leaf::Instance(i), ColId::Base { inst, .. }) if *i == inst => return true,
                (Leaf::Agg(a), _) if self.agg_exposes(*a, col) => return true,
                _ => {}
            }
        }
        false
    }

    /// Whether the aggregate group `a` exposes `col` as a group-by column or
    /// an aggregate output.
    fn agg_exposes(&self, a: GroupId, col: ColId) -> bool {
        self.group_exprs(a).any(|e| match self.op(e) {
            LogicalOp::Aggregate(spec) => {
                spec.group_by.contains(&col) || spec.aggs.iter().any(|c| c.output == col)
            }
            _ => false,
        })
    }

    /// Registered query roots.
    pub fn roots(&self) -> Vec<GroupId> {
        self.roots.iter().map(|&g| self.find(g)).collect()
    }

    /// Looks up the expression id an `(op, children)` pair is interned
    /// under, if any (children are canonicalized the way [`Memo::insert`]
    /// would). Probing never mutates the memo.
    pub fn expr_id_of(&self, op: &LogicalOp, children: &[GroupId]) -> Option<ExprId> {
        let mut ch: Vec<GroupId> = children.iter().map(|&c| self.find(c)).collect();
        if let LogicalOp::Join(_) = op {
            self.canonicalize_join_children(&mut ch);
        }
        let &op_id = self.op_index.get(op)?;
        self.index.get(&(op_id, ch)).copied()
    }

    /// Starts recording the expansion change log (clearing any prior
    /// entries).
    pub(crate) fn log_start(&mut self) {
        self.log.active = true;
        self.log.grown.clear();
        self.log.rewritten.clear();
    }

    /// Stops recording the change log.
    pub(crate) fn log_stop(&mut self) {
        self.log.active = false;
    }

    /// Groups that gained expressions since [`Memo::log_start`].
    pub(crate) fn log_grown(&self) -> &[GroupId] {
        &self.log.grown
    }

    /// Live-at-the-time expressions rewritten by merges since
    /// [`Memo::log_start`] (entries may have been tombstoned later).
    pub(crate) fn log_rewritten(&self) -> &[ExprId] {
        &self.log.rewritten
    }

    /// Opens a delta window: subsequent inserts, merges, and tombstones are
    /// summarized into a [`MemoDelta`] until [`Memo::delta_take`] closes it.
    /// Windows do not nest.
    pub fn delta_begin(&mut self) {
        assert!(self.delta.is_none(), "delta window already open");
        self.delta = Some(MemoDelta {
            exprs_before: self.expr_op.len(),
            exprs_after: self.expr_op.len(),
            groups_before: self.groups.len(),
            groups_after: self.groups.len(),
            ..MemoDelta::default()
        });
    }

    /// Closes the open delta window and returns its summary.
    pub fn delta_take(&mut self) -> MemoDelta {
        let mut d = self.delta.take().expect("no delta window open");
        d.exprs_after = self.expr_op.len();
        d.groups_after = self.groups.len();
        d
    }

    /// Takes a savepoint: a token [`Memo::truncate_to`] can later rewind
    /// to, discarding every mutation made in between. While at least one
    /// savepoint is outstanding the memo records an undo log, so frozen
    /// (savepoint-free) construction pays nothing.
    pub fn savepoint(&mut self) -> Savepoint {
        let serial = self.next_sp_serial;
        self.next_sp_serial += 1;
        let depth = self.sp_stack.len();
        self.sp_stack.push(serial);
        Savepoint {
            serial,
            depth,
            n_groups: self.groups.len(),
            n_exprs: self.expr_op.len(),
            n_child_arena: self.child_arena.len(),
            n_ops: self.ops.len(),
            n_roots: self.roots.len(),
            undo_len: self.undo.len(),
        }
    }

    /// Length of the in-place undo log. Non-empty only while savepoints
    /// are outstanding; together with a batch's entry list this is the
    /// evolution history a long-lived session accumulates (and what
    /// re-baselining compacts away).
    pub fn undo_len(&self) -> usize {
        self.undo.len()
    }

    /// Whether a savepoint is still on the stack (it was not rolled past,
    /// released, or wiped by [`Memo::reset`]).
    pub fn savepoint_valid(&self, sp: &Savepoint) -> bool {
        self.sp_stack.get(sp.depth) == Some(&sp.serial)
    }

    /// Rewinds the memo to the exact state captured by `sp`: undoes every
    /// recorded in-place mutation newest-first, then truncates the arenas,
    /// the operator interner, the hash-consing index, and the root list to
    /// the savepoint's watermarks. Savepoints taken after `sp` become
    /// invalid.
    ///
    /// # Panics
    /// If `sp` is stale (already rolled past, released, or from a reset
    /// lineage).
    pub fn truncate_to(&mut self, sp: &Savepoint) {
        assert!(self.savepoint_valid(sp), "stale savepoint");
        self.sp_stack.truncate(sp.depth);
        while self.undo.len() > sp.undo_len {
            match self.undo.pop().expect("undo entry") {
                Undo::UfSet { slot } => self.uf[slot as usize] = slot,
                Undo::ExprsMoved {
                    keep,
                    drop,
                    old_len,
                } => {
                    let tail = self.groups[keep.0 as usize]
                        .exprs
                        .split_off(old_len as usize);
                    for &e in &tail {
                        self.group_of[e.0 as usize] = drop;
                    }
                    self.groups[drop.0 as usize].exprs = tail;
                }
                Undo::ParentsTaken { drop, parents } => {
                    self.groups[drop.0 as usize].parents = parents;
                }
                Undo::ParentPushed { group } => {
                    self.groups[group.0 as usize].parents.pop();
                }
                Undo::ExprPushed { group } => {
                    self.groups[group.0 as usize].exprs.pop();
                }
                Undo::Rewritten {
                    e,
                    old_children,
                    was_killed,
                    now_indexed,
                } => {
                    let op = self.expr_op[e.0 as usize];
                    if now_indexed {
                        let cur = self.children(e).to_vec();
                        self.index.remove(&(op, cur));
                    }
                    if was_killed {
                        self.alive[e.0 as usize] = true;
                    }
                    let start = self.child_off[e.0 as usize] as usize;
                    self.child_arena[start..start + old_children.len()]
                        .copy_from_slice(&old_children);
                    self.index.insert((op, old_children), e);
                }
                Undo::ProducerInserted(col) => {
                    self.producers.remove(&col);
                }
                Undo::BatchRootSet { old } => self.batch_root = old,
            }
        }
        // Appended expressions: drop their index entries, then the arenas.
        for e in sp.n_exprs..self.expr_op.len() {
            if self.alive[e] {
                let key = (self.expr_op[e], self.children(ExprId(e as u32)).to_vec());
                self.index.remove(&key);
            }
        }
        self.expr_op.truncate(sp.n_exprs);
        self.alive.truncate(sp.n_exprs);
        self.group_of.truncate(sp.n_exprs);
        self.child_off.truncate(sp.n_exprs + 1);
        self.child_arena.truncate(sp.n_child_arena);
        self.groups.truncate(sp.n_groups);
        self.uf.truncate(sp.n_groups);
        for op in self.ops.drain(sp.n_ops..) {
            self.op_index.remove(&op);
        }
        self.roots.truncate(sp.n_roots);
        self.version += 1;
    }

    /// Releases a savepoint without rewinding: the mutations made since
    /// become permanent. Savepoints taken after `sp` become invalid; once
    /// no savepoint is outstanding the undo log is discarded.
    ///
    /// # Panics
    /// If `sp` is stale.
    pub fn release(&mut self, sp: &Savepoint) {
        assert!(self.savepoint_valid(sp), "stale savepoint");
        self.sp_stack.truncate(sp.depth);
        if self.sp_stack.is_empty() {
            self.undo.clear();
        }
    }

    /// Clears every arena, index, root, savepoint, and delta window while
    /// keeping the context, returning the memo to its freshly-constructed
    /// state. All outstanding savepoints become invalid. The version
    /// counter keeps increasing across a reset.
    pub fn reset(&mut self) {
        self.groups.clear();
        self.uf.clear();
        self.ops.clear();
        self.op_index.clear();
        self.expr_op.clear();
        self.child_off.clear();
        self.child_off.push(0);
        self.child_arena.clear();
        self.alive.clear();
        self.group_of.clear();
        self.index.clear();
        self.producers.clear();
        self.roots.clear();
        self.log = ChangeLog::default();
        self.delta = None;
        self.undo.clear();
        self.sp_stack.clear();
        self.batch_root = None;
        self.version += 1;
    }

    /// Interns an operator payload, returning its dense id. This is the
    /// single place a deep operator hash is paid per insert.
    fn intern_op(&mut self, op: LogicalOp) -> OpId {
        if let Some(&id) = self.op_index.get(&op) {
            return id;
        }
        let id = OpId(self.ops.len() as u32);
        self.ops.push(op.clone());
        self.op_index.insert(op, id);
        id
    }

    /// Inserts an expression, hash-consing on `(op, children)`.
    ///
    /// * With `target = None`, the expression's group is the existing owner
    ///   (if the expression is known) or a fresh group.
    /// * With `target = Some(g)` — used by transformation rules, which know
    ///   the result is equivalent to `g` — a pre-existing owner different
    ///   from `g` triggers a group merge.
    ///
    /// Returns the (representative) group now holding the expression.
    pub fn insert(
        &mut self,
        op: LogicalOp,
        children: Vec<GroupId>,
        target: Option<GroupId>,
    ) -> GroupId {
        if let Some(arity) = op.arity() {
            assert_eq!(children.len(), arity, "arity mismatch for {op:?}");
        }
        let mut children: Vec<GroupId> = children.iter().map(|&c| self.find(c)).collect();
        if let LogicalOp::Join(_) = op {
            self.canonicalize_join_children(&mut children);
        }
        // No-op selection: if the child's applied predicate already implies
        // this one, the expression is the child itself.
        if let LogicalOp::Select(p) = &op {
            let child = children[0];
            if self.groups[child.0 as usize].props.applied.implies(p) {
                if let Some(t) = target {
                    let t = self.find(t);
                    if t != child {
                        self.merge(child, t);
                    }
                }
                return self.find(child);
            }
        }
        // An expression computing a group from itself is never useful; skip.
        if let Some(t) = target {
            let t = self.find(t);
            if children.contains(&t) {
                return t;
            }
        }
        let op_id = self.intern_op(op);
        let key = (op_id, children);
        if let Some(&e) = self.index.get(&key) {
            let owner = self.group_of(e);
            if let Some(t) = target {
                let t = self.find(t);
                if t != owner {
                    self.merge(owner, t);
                    return self.find(owner);
                }
            }
            return owner;
        }
        let (op_id, children) = key;

        // New expression.
        let eid = ExprId(self.expr_op.len() as u32);
        let props = {
            let op = &self.ops[op_id.0 as usize];
            let child_props: Vec<&LogicalProps> = children
                .iter()
                .map(|&c| &self.groups[c.0 as usize].props)
                .collect();
            compute_props(
                op,
                &child_props,
                &self.ctx,
                |g| self.groups[self.find(g).0 as usize].props.rows,
                |g| self.groups[self.find(g).0 as usize].props.width,
            )
        };
        self.expr_op.push(op_id);
        self.child_arena.extend_from_slice(&children);
        self.child_off.push(self.child_arena.len() as u32);
        self.alive.push(true);
        self.version += 1;

        let group = match target {
            Some(t) => {
                let t = self.find(t);
                self.groups[t.0 as usize].exprs.push(eid);
                if self.recording() {
                    self.undo.push(Undo::ExprPushed { group: t });
                }
                if let Some(d) = self.delta.as_mut() {
                    d.grown.push(t);
                }
                if self.log.active {
                    self.log.grown.push(t);
                }
                t
            }
            None => {
                let gid = GroupId(self.groups.len() as u32);
                let mut props = props;
                if let LogicalOp::Aggregate(spec) = &self.ops[op_id.0 as usize] {
                    // The aggregate's own output is the leaf of its region.
                    props.leaves = vec![Leaf::Agg(gid)];
                    let recording = self.recording();
                    for call in &spec.aggs {
                        if let Entry::Vacant(v) = self.producers.entry(call.output) {
                            v.insert(gid);
                            if recording {
                                self.undo.push(Undo::ProducerInserted(call.output));
                            }
                        }
                    }
                }
                self.groups.push(GroupData {
                    exprs: vec![eid],
                    parents: Vec::new(),
                    props,
                });
                self.uf.push(gid.0);
                gid
            }
        };
        self.group_of.push(group);
        for &c in &children {
            self.groups[c.0 as usize].parents.push(eid);
        }
        if self.recording() {
            for &c in &children {
                self.undo.push(Undo::ParentPushed { group: c });
            }
        }
        self.index.insert((op_id, children), eid);
        self.find(group)
    }

    /// Canonical order for join children: by `(leaves, applied)` of the
    /// child groups, so commutative variants hash identically. Pure
    /// structural comparison — no formatting, no cloning.
    fn canonicalize_join_children(&self, children: &mut [GroupId]) {
        debug_assert_eq!(children.len(), 2);
        let key = |g: GroupId| {
            let p = &self.groups[g.0 as usize].props;
            (&p.leaves, &p.applied)
        };
        if key(children[1]) < key(children[0]) {
            children.swap(0, 1);
        }
    }

    /// Merges two groups (and cascades through affected parents).
    pub fn merge(&mut self, a: GroupId, b: GroupId) {
        let mut pending = vec![(a, b)];
        while let Some((a, b)) = pending.pop() {
            let ra = self.find(a);
            let rb = self.find(b);
            if ra == rb {
                continue;
            }
            let (keep, drop) = if ra < rb { (ra, rb) } else { (rb, ra) };
            debug_assert!(
                relative_close(
                    self.groups[keep.0 as usize].props.rows,
                    self.groups[drop.0 as usize].props.rows
                ),
                "merging groups with diverging cardinalities: {} vs {}",
                self.groups[keep.0 as usize].props.rows,
                self.groups[drop.0 as usize].props.rows
            );
            self.uf[drop.0 as usize] = keep.0;
            self.version += 1;
            if self.recording() {
                self.undo.push(Undo::UfSet { slot: drop.0 });
            }
            if let Some(d) = self.delta.as_mut() {
                d.merges.push((keep, drop));
                d.grown.push(keep);
            }
            if self.log.active {
                self.log.grown.push(keep);
            }

            let dropped_exprs = std::mem::take(&mut self.groups[drop.0 as usize].exprs);
            for e in &dropped_exprs {
                self.group_of[e.0 as usize] = keep;
            }
            // A transferred expression whose children reference `keep`
            // becomes a self-reference the moment it changes owner (e.g.
            // σ(G) living in a group that merges into G). Parents of `drop`
            // are caught by the rewrite loop below, but these reference
            // `keep` directly and are never rehashed — tombstone them here,
            // removing their index entries, or they survive as live
            // self-referential duplicates (and fake cycles in topo_order).
            for &e in &dropped_exprs {
                if self.alive[e.0 as usize] && self.children(e).contains(&keep) {
                    let mut key_children = std::mem::take(&mut self.rehash_key);
                    key_children.clear();
                    key_children.extend_from_slice(self.children(e));
                    let key = (self.expr_op[e.0 as usize], key_children);
                    self.index.remove(&key);
                    let (_, key_children) = key;
                    self.alive[e.0 as usize] = false;
                    self.version += 1;
                    if self.recording() {
                        self.undo.push(Undo::Rewritten {
                            e,
                            old_children: key_children.clone(),
                            was_killed: true,
                            now_indexed: false,
                        });
                    }
                    if let Some(d) = self.delta.as_mut() {
                        d.tombstoned.push(e);
                    }
                    self.rehash_key = key_children;
                }
            }
            if self.recording() {
                self.undo.push(Undo::ExprsMoved {
                    keep,
                    drop,
                    old_len: self.groups[keep.0 as usize].exprs.len() as u32,
                });
            }
            self.groups[keep.0 as usize].exprs.extend(dropped_exprs);
            let dropped_parents = std::mem::take(&mut self.groups[drop.0 as usize].parents);
            if self.recording() {
                self.undo.push(Undo::ParentsTaken {
                    drop,
                    parents: dropped_parents.clone(),
                });
            }

            // Re-hash every parent whose child list mentioned `drop`.
            for e in dropped_parents {
                if !self.alive[e.0 as usize] {
                    continue;
                }
                let op_id = self.expr_op[e.0 as usize];
                let is_join = matches!(self.ops[op_id.0 as usize], LogicalOp::Join(_));
                // Old key (children as stored), removed before the rewrite.
                // Built in the memo-owned scratch buffer: a rehash only
                // allocates when its key is actually handed to the index.
                let mut key_children = std::mem::take(&mut self.rehash_key);
                key_children.clear();
                key_children.extend_from_slice(self.children(e));
                let key = (op_id, key_children);
                self.index.remove(&key);
                let (_, mut key_children) = key;
                let old_children = if self.recording() {
                    Some(key_children.clone())
                } else {
                    None
                };
                for c in key_children.iter_mut() {
                    *c = self.find(*c);
                }
                if is_join {
                    self.canonicalize_join_children(&mut key_children);
                }
                let start = self.child_off[e.0 as usize] as usize;
                self.child_arena[start..start + key_children.len()].copy_from_slice(&key_children);
                // A merge can turn an expression into a self-reference
                // (its child group became its own group); such expressions
                // are useless for planning — tombstone them.
                if key_children.contains(&self.group_of(e)) {
                    self.alive[e.0 as usize] = false;
                    self.version += 1;
                    if let Some(old_children) = old_children {
                        self.undo.push(Undo::Rewritten {
                            e,
                            old_children,
                            was_killed: true,
                            now_indexed: false,
                        });
                    }
                    if let Some(d) = self.delta.as_mut() {
                        d.tombstoned.push(e);
                    }
                    self.rehash_key = key_children;
                    continue;
                }
                self.groups[keep.0 as usize].parents.push(e);
                if self.recording() {
                    self.undo.push(Undo::ParentPushed { group: keep });
                }
                let probe = (op_id, key_children);
                match self.index.get(&probe).copied() {
                    None => {
                        self.index.insert(probe, e);
                        if let Some(old_children) = old_children {
                            self.undo.push(Undo::Rewritten {
                                e,
                                old_children,
                                was_killed: false,
                                now_indexed: true,
                            });
                        }
                        self.version += 1;
                        if self.log.active {
                            self.log.rewritten.push(e);
                        }
                    }
                    Some(canonical) => {
                        self.rehash_key = probe.1;
                        if canonical == e {
                            if let Some(old_children) = old_children {
                                self.undo.push(Undo::Rewritten {
                                    e,
                                    old_children,
                                    was_killed: false,
                                    now_indexed: false,
                                });
                            }
                            continue;
                        }
                        // Duplicate of an existing expression: tombstone it
                        // and merge the owning groups.
                        self.alive[e.0 as usize] = false;
                        self.version += 1;
                        if let Some(old_children) = old_children {
                            self.undo.push(Undo::Rewritten {
                                e,
                                old_children,
                                was_killed: true,
                                now_indexed: false,
                            });
                        }
                        if let Some(d) = self.delta.as_mut() {
                            d.tombstoned.push(e);
                        }
                        let g1 = self.group_of(e);
                        let g2 = self.group_of(canonical);
                        if g1 != g2 {
                            pending.push((g1, g2));
                        }
                    }
                }
            }
        }
    }

    /// Inserts a whole plan tree, returning its root group.
    pub fn insert_plan(&mut self, plan: &PlanNode) -> GroupId {
        match plan {
            PlanNode::Scan { inst } => self.insert(LogicalOp::Scan(*inst), vec![], None),
            PlanNode::Select { pred, input } => {
                let c = self.insert_plan(input);
                self.insert(LogicalOp::Select(pred.clone()), vec![c], None)
            }
            PlanNode::Join { pred, left, right } => {
                let l = self.insert_plan(left);
                let r = self.insert_plan(right);
                self.insert(LogicalOp::Join(pred.clone()), vec![l, r], None)
            }
            PlanNode::Aggregate { spec, input } => {
                let c = self.insert_plan(input);
                self.insert(LogicalOp::Aggregate(spec.clone()), vec![c], None)
            }
        }
    }

    /// Registers a query root (a group produced by [`Memo::insert_plan`]).
    pub fn add_query_root(&mut self, g: GroupId) {
        self.roots.push(self.find(g));
    }

    /// Builds (or rebuilds) the dummy batch root over all registered query
    /// roots and returns its group. On a rebuild — the root set changed
    /// since the last call — the stale `Root` expression is tombstoned and
    /// a fresh one is interned *into the same group*, so the root group id
    /// stays stable across batch evolution.
    pub fn build_batch_root(&mut self) -> GroupId {
        let roots = self.roots();
        assert!(!roots.is_empty(), "no query roots registered");
        let Some(rg) = self.batch_root else {
            let g = self.insert(LogicalOp::Root, roots, None);
            if self.recording() {
                self.undo.push(Undo::BatchRootSet { old: None });
            }
            self.batch_root = Some(g);
            return g;
        };
        let rg = self.find(rg);
        let live: Vec<ExprId> = self.group_exprs(rg).collect();
        if live.len() == 1
            && matches!(self.op(live[0]), LogicalOp::Root)
            && self.children(live[0]) == roots.as_slice()
        {
            return rg;
        }
        for e in live {
            self.tombstone_expr(e);
        }
        let g = self.insert(LogicalOp::Root, roots, Some(rg));
        debug_assert_eq!(g, self.find(rg));
        g
    }

    /// Tombstones a live expression, removing its hash-consing entry.
    fn tombstone_expr(&mut self, e: ExprId) {
        debug_assert!(self.alive[e.0 as usize]);
        let old_children = self.children(e).to_vec();
        let key = (self.expr_op[e.0 as usize], old_children);
        self.index.remove(&key);
        self.alive[e.0 as usize] = false;
        self.version += 1;
        if self.recording() {
            self.undo.push(Undo::Rewritten {
                e,
                old_children: key.1,
                was_killed: true,
                now_indexed: false,
            });
        }
        if let Some(d) = self.delta.as_mut() {
            d.tombstoned.push(e);
        }
    }

    /// Children groups of a group: union over its live expressions,
    /// deduplicated.
    pub fn group_children(&self, g: GroupId) -> Vec<GroupId> {
        let mut out: Vec<GroupId> = self
            .group_exprs(g)
            .flat_map(|e| self.children(e).iter().map(|&c| self.find(c)))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Groups in a topological order (children before parents). Only live
    /// representative groups are emitted.
    pub fn topo_order(&self) -> Vec<GroupId> {
        let n = self.groups.len();
        let mut state = vec![0u8; n]; // 0 = unvisited, 1 = visiting, 2 = done
        let mut out = Vec::with_capacity(n);
        for start in 0..n as u32 {
            let start = self.find(GroupId(start));
            if state[start.0 as usize] != 0 {
                continue;
            }
            let mut stack: Vec<(GroupId, Vec<GroupId>, usize)> =
                vec![(start, self.group_children(start), 0)];
            state[start.0 as usize] = 1;
            while !stack.is_empty() {
                let (g, next) = {
                    let top = stack.last_mut().expect("non-empty stack");
                    if top.2 < top.1.len() {
                        let c = top.1[top.2];
                        top.2 += 1;
                        (top.0, Some(c))
                    } else {
                        (top.0, None)
                    }
                };
                match next {
                    Some(c) => match state[c.0 as usize] {
                        0 => {
                            state[c.0 as usize] = 1;
                            let children = self.group_children(c);
                            stack.push((c, children, 0));
                        }
                        1 => panic!("cycle in memo DAG"),
                        _ => {}
                    },
                    None => {
                        state[g.0 as usize] = 2;
                        out.push(g);
                        stack.pop();
                    }
                }
            }
        }
        out
    }

    /// Builds the dense topological view of the live representative groups:
    /// a contiguous index space (children before parents) with CSR
    /// child/parent adjacency. Consumers that sweep the DAG bottom-up (the
    /// `bestCost` engine) index flat arrays by dense position instead of
    /// hashing `GroupId`s on every lookup.
    pub fn topo_view(&self) -> TopoView {
        let order = self.topo_order();
        let n = order.len();
        let mut dense_of_slot = vec![u32::MAX; self.groups.len()];
        for (i, &g) in order.iter().enumerate() {
            dense_of_slot[g.0 as usize] = i as u32;
        }
        // Merged-away slots resolve through their representative, so any
        // GroupId — canonical or not — maps without a `find` at the caller.
        for slot in 0..self.groups.len() {
            if dense_of_slot[slot] == u32::MAX {
                let rep = self.find(GroupId(slot as u32));
                dense_of_slot[slot] = dense_of_slot[rep.0 as usize];
            }
        }

        // CSR children: union over live expressions, deduplicated,
        // self-edges excluded (an expression computing a group from itself
        // is tombstoned, but group-level dedup is re-checked here anyway).
        let mut children_off = Vec::with_capacity(n + 1);
        let mut children = Vec::new();
        let mut parents_count = vec![0u32; n];
        children_off.push(0u32);
        for (gi, &g) in order.iter().enumerate() {
            let mut cs: Vec<u32> = self
                .group_children(g)
                .into_iter()
                .map(|c| dense_of_slot[c.0 as usize])
                .filter(|&c| c as usize != gi)
                .collect();
            cs.sort_unstable();
            cs.dedup();
            for &c in &cs {
                parents_count[c as usize] += 1;
            }
            children.extend_from_slice(&cs);
            children_off.push(children.len() as u32);
        }

        // CSR parents: exact transpose of the children adjacency.
        let mut parents_off = Vec::with_capacity(n + 1);
        parents_off.push(0u32);
        for gi in 0..n {
            parents_off.push(parents_off[gi] + parents_count[gi]);
        }
        let mut parents = vec![0u32; *parents_off.last().unwrap() as usize];
        let mut cursor: Vec<u32> = parents_off[..n].to_vec();
        for gi in 0..n {
            for &c in &children[children_off[gi] as usize..children_off[gi + 1] as usize] {
                parents[cursor[c as usize] as usize] = gi as u32;
                cursor[c as usize] += 1;
            }
        }

        TopoView {
            order,
            dense_of_slot,
            children_off,
            children,
            parents_off,
            parents,
        }
    }

    /// The set of live groups reachable from `start` (inclusive).
    pub fn reachable(&self, start: GroupId) -> Vec<GroupId> {
        let mut seen = vec![false; self.groups.len()];
        let mut stack = vec![self.find(start)];
        let mut out = Vec::new();
        while let Some(g) = stack.pop() {
            if seen[g.0 as usize] {
                continue;
            }
            seen[g.0 as usize] = true;
            out.push(g);
            for e in self.group_exprs(g) {
                for &c in self.children(e) {
                    let c = self.find(c);
                    if !seen[c.0 as usize] {
                        stack.push(c);
                    }
                }
            }
        }
        out
    }

    /// Exhaustive structural consistency check; panics with a description
    /// on the first violated invariant. Intended for tests (it is O(memo)
    /// with hashing per expression):
    ///
    /// 1. the hash-consing index is a bijection onto the live expressions
    ///    (in particular, no two live expressions share `(op, children)` —
    ///    merges must never leave a stale duplicate behind);
    /// 2. live expressions reference representative groups only, and never
    ///    their own group;
    /// 3. group membership and parent lists are mutually consistent.
    pub fn check_consistency(&self) {
        let mut live = 0usize;
        for e in self.expr_ids() {
            live += 1;
            let owner = self.group_of(e);
            let children = self.children(e);
            for &c in children {
                assert_eq!(
                    self.find(c),
                    c,
                    "live expr {e:?} references non-representative child {c:?}"
                );
                assert_ne!(c, owner, "live expr {e:?} is a self-reference");
                assert!(
                    self.groups[c.0 as usize].parents.contains(&e),
                    "child {c:?} of live expr {e:?} does not list it as parent"
                );
            }
            let key = (self.expr_op[e.0 as usize], children.to_vec());
            match self.index.get(&key) {
                Some(&canonical) => assert_eq!(
                    canonical, e,
                    "live exprs {canonical:?} and {e:?} share (op, children): stale duplicate"
                ),
                None => panic!("live expr {e:?} missing from the hash-consing index"),
            }
            assert!(
                self.groups[owner.0 as usize].exprs.contains(&e),
                "group {owner:?} does not list its live expr {e:?}"
            );
        }
        assert_eq!(
            self.index.len(),
            live,
            "index size diverges from live expression count (dangling index entries)"
        );
        // mqo-lint: allow(hashmap-iter-determinism) -- assertion-only sweep: order-independent (all-or-nothing panics), nothing published
        for (&_, &e) in &self.index {
            assert!(
                self.alive[e.0 as usize],
                "index references tombstoned expr {e:?}"
            );
        }
        for (slot, g) in self.groups.iter().enumerate() {
            if self.uf[slot] != slot as u32 {
                assert!(
                    g.exprs.is_empty() && g.parents.is_empty(),
                    "merged-away group slot {slot} still owns exprs/parents"
                );
                continue;
            }
            for &e in &g.exprs {
                if self.alive[e.0 as usize] {
                    assert_eq!(
                        self.group_of(e),
                        GroupId(slot as u32),
                        "group slot {slot} lists expr {e:?} owned elsewhere"
                    );
                }
            }
        }
    }
}

/// A dense topological view of a [`Memo`]'s live representative groups.
///
/// Dense index `i` is the topological position of `order()[i]` (children
/// before parents). Child and parent adjacency are stored in CSR form over
/// dense indices: the neighbors of group `i` are a contiguous slice of a
/// flat arena, so bottom-up DP sweeps touch no hash maps and no per-group
/// heap allocations. The view is a snapshot — rebuilding it after further
/// memo mutations is the caller's responsibility.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TopoView {
    order: Vec<GroupId>,
    /// Raw group slot → dense position; merged-away slots point at their
    /// representative's position.
    dense_of_slot: Vec<u32>,
    children_off: Vec<u32>,
    children: Vec<u32>,
    parents_off: Vec<u32>,
    parents: Vec<u32>,
}

impl TopoView {
    /// Number of live representative groups.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Groups in topological order (children before parents).
    pub fn order(&self) -> &[GroupId] {
        &self.order
    }

    /// The group at a dense position.
    #[inline]
    pub fn group_at(&self, dense: usize) -> GroupId {
        self.order[dense]
    }

    /// Dense position of a group; accepts non-canonical ids (merged slots
    /// resolve through their representative).
    #[inline]
    pub fn dense(&self, g: GroupId) -> u32 {
        self.dense_of_slot[g.0 as usize]
    }

    /// Child groups (dense indices) of the group at a dense position,
    /// deduplicated, ascending, self-edges excluded.
    #[inline]
    pub fn children(&self, dense: usize) -> &[u32] {
        &self.children[self.children_off[dense] as usize..self.children_off[dense + 1] as usize]
    }

    /// Parent groups (dense indices) of the group at a dense position,
    /// deduplicated, ascending, self-edges excluded.
    #[inline]
    pub fn parents(&self, dense: usize) -> &[u32] {
        &self.parents[self.parents_off[dense] as usize..self.parents_off[dense + 1] as usize]
    }
}

fn relative_close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * (1.0 + a.abs().max(b.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Constraint, Predicate};
    use mqo_catalog::{Catalog, TableBuilder};

    fn test_ctx() -> DagContext {
        let mut cat = Catalog::new();
        for (name, rows) in [("a", 1000.0), ("b", 2000.0), ("c", 500.0), ("d", 100.0)] {
            cat.add_table(
                TableBuilder::new(name, rows)
                    .key_column(format!("{name}_key"), 4)
                    .column(format!("{name}_x"), 10.0, (0, 9), 4)
                    .primary_key(&[&format!("{name}_key")])
                    .build(),
            );
        }
        DagContext::new(cat)
    }

    #[test]
    fn hash_consing_shares_identical_subplans() {
        let mut ctx = test_ctx();
        let a = ctx.instance_by_name("a", 0);
        let mut memo = Memo::new(ctx);
        let g1 = memo.insert_plan(&PlanNode::scan(a));
        let g2 = memo.insert_plan(&PlanNode::scan(a));
        assert_eq!(g1, g2);
        assert_eq!(memo.n_groups(), 1);
        assert_eq!(memo.n_exprs(), 1);
        memo.check_consistency();
    }

    #[test]
    fn cross_query_subexpression_unifies() {
        // Query 1: (a ⋈ b); query 2: (a ⋈ b) ⋈ c. The shared join lands on
        // one group.
        let mut ctx = test_ctx();
        let a = ctx.instance_by_name("a", 0);
        let b = ctx.instance_by_name("b", 0);
        let c = ctx.instance_by_name("c", 0);
        let ja = ctx.col(a, "a_key");
        let jb = ctx.col(b, "b_x");
        let jc = ctx.col(c, "c_key");
        let jb2 = ctx.col(b, "b_key");
        let mut memo = Memo::new(ctx);

        let q1 = PlanNode::scan(a).join(PlanNode::scan(b), Predicate::join(ja, jb));
        let q2 = PlanNode::scan(a)
            .join(PlanNode::scan(b), Predicate::join(ja, jb))
            .join(PlanNode::scan(c), Predicate::join(jb2, jc));
        let g1 = memo.insert_plan(&q1);
        let g2 = memo.insert_plan(&q2);
        assert_ne!(g1, g2);
        // groups: a, b, c, a⋈b, (a⋈b)⋈c = 5
        assert_eq!(memo.n_groups(), 5);
        // The a⋈b group has a parent (the top join).
        assert_eq!(memo.group_parents(g1).len(), 1);
    }

    #[test]
    fn join_children_canonicalized() {
        let mut ctx = test_ctx();
        let a = ctx.instance_by_name("a", 0);
        let b = ctx.instance_by_name("b", 0);
        let ja = ctx.col(a, "a_key");
        let jb = ctx.col(b, "b_x");
        let mut memo = Memo::new(ctx);
        let p = Predicate::join(ja, jb);
        let g1 = memo.insert_plan(&PlanNode::scan(a).join(PlanNode::scan(b), p.clone()));
        let g2 = memo.insert_plan(&PlanNode::scan(b).join(PlanNode::scan(a), p));
        assert_eq!(g1, g2, "commutative variants must share a group");
    }

    #[test]
    fn interning_is_idempotent_and_probe_matches() {
        let mut ctx = test_ctx();
        let a = ctx.instance_by_name("a", 0);
        let b = ctx.instance_by_name("b", 0);
        let ja = ctx.col(a, "a_key");
        let jb = ctx.col(b, "b_x");
        let mut memo = Memo::new(ctx);
        let ga = memo.insert(LogicalOp::Scan(a), vec![], None);
        let gb = memo.insert(LogicalOp::Scan(b), vec![], None);
        let op = LogicalOp::Join(Predicate::join(ja, jb));
        let before_exprs = memo.exprs_allocated();
        let before_ops = memo.n_interned_ops();
        let g = memo.insert(op.clone(), vec![ga, gb], None);
        let e1 = memo.expr_id_of(&op, &[ga, gb]).expect("interned");
        // Same logical expression again: same ExprId, no growth anywhere.
        let g2 = memo.insert(op.clone(), vec![gb, ga], None);
        assert_eq!(g, g2);
        assert_eq!(memo.expr_id_of(&op, &[gb, ga]), Some(e1));
        assert_eq!(memo.exprs_allocated(), before_exprs + 1);
        assert_eq!(memo.n_interned_ops(), before_ops + 1);
        memo.check_consistency();
    }

    #[test]
    fn merge_unifies_groups_and_cascades() {
        let mut ctx = test_ctx();
        let a = ctx.instance_by_name("a", 0);
        let b = ctx.instance_by_name("b", 0);
        let c = ctx.instance_by_name("c", 0);
        let ja = ctx.col(a, "a_key");
        let jb = ctx.col(b, "b_x");
        let jc = ctx.col(c, "c_key");
        let jb2 = ctx.col(b, "b_key");
        let mut memo = Memo::new(ctx);

        // Two structurally different expressions of a⋈b: the base join and a
        // select-less "variant" group we then declare equal via target.
        let ab1 =
            memo.insert_plan(&PlanNode::scan(a).join(PlanNode::scan(b), Predicate::join(ja, jb)));
        // A parent on top of ab1.
        let top1 = memo.insert_plan(
            &PlanNode::scan(a)
                .join(PlanNode::scan(b), Predicate::join(ja, jb))
                .join(PlanNode::scan(c), Predicate::join(jb2, jc)),
        );

        // An artificial second group equivalent to ab1: select with a
        // predicate over ab1's child... simpler: create a distinct group by
        // selecting on a trivial range, then merge explicitly.
        let sel = Predicate::on(jb2, Constraint::range(Some(0), Some(1_999)));
        let ab2 = {
            let scan_a = memo.insert(LogicalOp::Scan(a), vec![], None);
            let scan_b = memo.insert(LogicalOp::Scan(b), vec![], None);
            let j = memo.insert(
                LogicalOp::Join(Predicate::join(ja, jb)),
                vec![scan_a, scan_b],
                None,
            );
            memo.insert(LogicalOp::Select(sel), vec![j], None)
        };
        // Same-parent expr over ab2.
        let gc = memo.insert(LogicalOp::Scan(c), vec![], None);
        let top2 = memo.insert(
            LogicalOp::Join(Predicate::join(jb2, jc)),
            vec![ab2, gc],
            None,
        );
        assert_ne!(memo.find(top1), memo.find(top2));

        // Declare ab1 == ab2 (as a subsumption-style rule would).
        memo.merge(ab1, ab2);
        assert_eq!(memo.find(ab1), memo.find(ab2));
        // Cascade: the two tops had identical (op, children) after the merge
        // and must have been unified.
        assert_eq!(memo.find(top1), memo.find(top2));
        memo.check_consistency();
    }

    #[test]
    fn merge_cascade_leaves_no_stale_duplicates() {
        // Force a multi-level cascade: two parallel derivation chains over
        // groups that are then declared equal at the bottom. Every level of
        // parents collapses pairwise; afterwards the memo must contain no
        // stale duplicate (two live expressions with identical operator and
        // children) and the hash-consing index must stay a bijection.
        let mut ctx = test_ctx();
        let a = ctx.instance_by_name("a", 0);
        let b = ctx.instance_by_name("b", 0);
        let c = ctx.instance_by_name("c", 0);
        let d = ctx.instance_by_name("d", 0);
        let ja = ctx.col(a, "a_key");
        let jb = ctx.col(b, "b_x");
        let jbk = ctx.col(b, "b_key");
        let jc = ctx.col(c, "c_key");
        let jd = ctx.col(d, "d_key");
        let mut memo = Memo::new(ctx);

        // Chain 1: ab1 = a⋈b, l1 = ab1⋈c, t1 = l1⋈d.
        let ab1 =
            memo.insert_plan(&PlanNode::scan(a).join(PlanNode::scan(b), Predicate::join(ja, jb)));
        let gc = memo.insert(LogicalOp::Scan(c), vec![], None);
        let gd = memo.insert(LogicalOp::Scan(d), vec![], None);
        let l1 = memo.insert(
            LogicalOp::Join(Predicate::join(jbk, jc)),
            vec![ab1, gc],
            None,
        );
        let t1 = memo.insert(
            LogicalOp::Join(Predicate::join(jbk, jd)),
            vec![l1, gd],
            None,
        );
        // Chain 2: the same shape over an artificially distinct bottom
        // (full-range select over a⋈b, as a subsumption rule would build).
        let sel = Predicate::on(jbk, Constraint::range(Some(0), Some(1_999)));
        let ab2 = memo.insert(LogicalOp::Select(sel), vec![ab1], None);
        let l2 = memo.insert(
            LogicalOp::Join(Predicate::join(jbk, jc)),
            vec![ab2, gc],
            None,
        );
        let t2 = memo.insert(
            LogicalOp::Join(Predicate::join(jbk, jd)),
            vec![l2, gd],
            None,
        );
        assert_ne!(memo.find(l1), memo.find(l2));
        assert_ne!(memo.find(t1), memo.find(t2));

        let exprs_before = memo.n_exprs();
        memo.merge(ab1, ab2);
        // The cascade must have collapsed both levels of parents...
        assert_eq!(memo.find(l1), memo.find(l2));
        assert_eq!(memo.find(t1), memo.find(t2));
        // ...tombstoning one duplicate per collapsed level (the σ expr
        // becomes a self-reference and dies too).
        assert!(memo.n_exprs() < exprs_before);
        // No stale duplicates / dangling index entries anywhere.
        memo.check_consistency();
        // Re-inserting the collapsed expressions is a no-op.
        let before = memo.exprs_allocated();
        let g = memo.insert(
            LogicalOp::Join(Predicate::join(jbk, jc)),
            vec![memo.find(ab1), gc],
            None,
        );
        assert_eq!(g, memo.find(l1));
        assert_eq!(memo.exprs_allocated(), before);
    }

    #[test]
    fn topo_order_children_first() {
        let mut ctx = test_ctx();
        let a = ctx.instance_by_name("a", 0);
        let b = ctx.instance_by_name("b", 0);
        let ja = ctx.col(a, "a_key");
        let jb = ctx.col(b, "b_x");
        let mut memo = Memo::new(ctx);
        let top =
            memo.insert_plan(&PlanNode::scan(a).join(PlanNode::scan(b), Predicate::join(ja, jb)));
        let order = memo.topo_order();
        let pos = |g: GroupId| order.iter().position(|&x| x == g).unwrap();
        for e in memo.group_exprs(top) {
            for &c in memo.children(e) {
                assert!(pos(memo.find(c)) < pos(top));
            }
        }
    }

    #[test]
    fn topo_view_matches_topo_order_and_adjacency() {
        let mut ctx = test_ctx();
        let a = ctx.instance_by_name("a", 0);
        let b = ctx.instance_by_name("b", 0);
        let c = ctx.instance_by_name("c", 0);
        let ja = ctx.col(a, "a_key");
        let jb = ctx.col(b, "b_x");
        let jc = ctx.col(c, "c_key");
        let jb2 = ctx.col(b, "b_key");
        let mut memo = Memo::new(ctx);
        let ab =
            memo.insert_plan(&PlanNode::scan(a).join(PlanNode::scan(b), Predicate::join(ja, jb)));
        let top = memo.insert_plan(
            &PlanNode::scan(a)
                .join(PlanNode::scan(b), Predicate::join(ja, jb))
                .join(PlanNode::scan(c), Predicate::join(jb2, jc)),
        );

        let view = memo.topo_view();
        assert_eq!(view.order(), memo.topo_order().as_slice());
        assert_eq!(view.len(), memo.n_groups());
        // dense() inverts order(), and children precede parents.
        for (i, &g) in view.order().iter().enumerate() {
            assert_eq!(view.dense(g) as usize, i);
            assert_eq!(view.group_at(i), g);
            for &ch in view.children(i) {
                assert!((ch as usize) < i, "child after parent");
            }
            for &p in view.parents(i) {
                assert!((p as usize) > i, "parent before child");
            }
        }
        // CSR children match group_children; parents are the transpose.
        for (i, &g) in view.order().iter().enumerate() {
            let expect: Vec<u32> = memo
                .group_children(g)
                .into_iter()
                .map(|cg| view.dense(cg))
                .collect();
            assert_eq!(view.children(i), expect.as_slice());
            for &ch in view.children(i) {
                assert!(view.parents(ch as usize).contains(&(i as u32)));
            }
        }
        // Spot-check: ab's parents contain top.
        let ab_d = view.dense(ab) as usize;
        assert!(view.parents(ab_d).contains(&view.dense(top)));
    }

    #[test]
    fn topo_view_resolves_merged_slots() {
        let mut ctx = test_ctx();
        let a = ctx.instance_by_name("a", 0);
        let b = ctx.instance_by_name("b", 0);
        let ja = ctx.col(a, "a_key");
        let jb = ctx.col(b, "b_x");
        let ja2 = ctx.col(a, "a_x");
        let mut memo = Memo::new(ctx);
        let j =
            memo.insert_plan(&PlanNode::scan(a).join(PlanNode::scan(b), Predicate::join(ja, jb)));
        // Two structurally different full-range selects over the same join:
        // distinct groups with identical cardinalities, as a subsumption
        // rule would discover before declaring them equal.
        let sel1 = Predicate::on(jb, Constraint::range(Some(0), Some(9)));
        let sel2 = Predicate::on(ja2, Constraint::range(Some(0), Some(9)));
        let g1 = memo.insert(LogicalOp::Select(sel1), vec![j], None);
        let g2 = memo.insert(LogicalOp::Select(sel2), vec![j], None);
        assert_ne!(memo.find(g1), memo.find(g2));
        memo.merge(g1, g2);
        let view = memo.topo_view();
        // Both pre-merge ids land on the representative's dense position.
        assert_eq!(view.dense(g1), view.dense(g2));
        assert_eq!(view.group_at(view.dense(g1) as usize), memo.find(g1));
    }

    #[test]
    fn batch_root_counts_queries() {
        let mut ctx = test_ctx();
        let a = ctx.instance_by_name("a", 0);
        let b = ctx.instance_by_name("b", 0);
        let mut memo = Memo::new(ctx);
        let q1 = memo.insert_plan(&PlanNode::scan(a));
        let q2 = memo.insert_plan(&PlanNode::scan(b));
        memo.add_query_root(q1);
        memo.add_query_root(q2);
        let root = memo.build_batch_root();
        let exprs: Vec<ExprId> = memo.group_exprs(root).collect();
        assert_eq!(exprs.len(), 1);
        assert_eq!(memo.expr(exprs[0]).children.len(), 2);
    }

    #[test]
    fn reachable_covers_subdag() {
        let mut ctx = test_ctx();
        let a = ctx.instance_by_name("a", 0);
        let b = ctx.instance_by_name("b", 0);
        let ja = ctx.col(a, "a_key");
        let jb = ctx.col(b, "b_x");
        let mut memo = Memo::new(ctx);
        let top =
            memo.insert_plan(&PlanNode::scan(a).join(PlanNode::scan(b), Predicate::join(ja, jb)));
        let r = memo.reachable(top);
        assert_eq!(r.len(), 3); // a, b, a⋈b
    }

    /// Two joined-and-selected queries over the test catalog whose
    /// expansion exercises merges, cascades, and tombstones.
    fn two_query_fixture(ctx: &mut DagContext) -> Vec<PlanNode> {
        let a = ctx.instance_by_name("a", 0);
        let b = ctx.instance_by_name("b", 0);
        let c = ctx.instance_by_name("c", 0);
        let ja = ctx.col(a, "a_key");
        let jb = ctx.col(b, "b_x");
        let jb2 = ctx.col(b, "b_key");
        let jc = ctx.col(c, "c_key");
        let ax = ctx.col(a, "a_x");
        let q1 = PlanNode::scan(a)
            .select(Predicate::on(ax, Constraint::eq(3)))
            .join(PlanNode::scan(b), Predicate::join(ja, jb));
        let q2 = PlanNode::scan(a)
            .join(PlanNode::scan(b), Predicate::join(ja, jb))
            .join(PlanNode::scan(c), Predicate::join(jb2, jc));
        vec![q1, q2]
    }

    /// Everything observable about a memo's structure, for exact
    /// state-restoration assertions.
    fn state_sig(memo: &Memo) -> (usize, usize, usize, usize, Vec<GroupId>, TopoView) {
        (
            memo.exprs_allocated(),
            memo.n_exprs(),
            memo.n_groups(),
            memo.n_interned_ops(),
            memo.roots(),
            memo.topo_view(),
        )
    }

    #[test]
    fn truncate_to_restores_pre_savepoint_state_exactly() {
        use crate::rules::{expand_with, RuleSet};
        let mut ctx = test_ctx();
        let queries = two_query_fixture(&mut ctx);
        let mut memo = Memo::new(ctx);
        let r1 = memo.insert_plan(&queries[0]);
        memo.add_query_root(r1);
        expand_with(&mut memo, &RuleSet::default(), 1);
        memo.build_batch_root();
        memo.check_consistency();
        let before = state_sig(&memo);
        let v0 = memo.version();

        let sp = memo.savepoint();
        let r2 = memo.insert_plan(&queries[1]);
        memo.add_query_root(r2);
        expand_with(&mut memo, &RuleSet::default(), 1);
        memo.build_batch_root();
        memo.check_consistency();
        assert_ne!(state_sig(&memo), before, "fixture must actually mutate");
        assert!(memo.version() > v0);

        memo.truncate_to(&sp);
        memo.check_consistency();
        assert_eq!(state_sig(&memo), before);
        assert!(!memo.savepoint_valid(&sp));
        assert!(memo.version() > v0, "version is monotone across a rollback");
    }

    #[test]
    fn nested_savepoints_rewind_in_lifo_order() {
        let mut ctx = test_ctx();
        let a = ctx.instance_by_name("a", 0);
        let b = ctx.instance_by_name("b", 0);
        let ja = ctx.col(a, "a_key");
        let jb = ctx.col(b, "b_x");
        let mut memo = Memo::new(ctx);
        memo.insert(LogicalOp::Scan(a), vec![], None);
        let sp1 = memo.savepoint();
        let gb = memo.insert(LogicalOp::Scan(b), vec![], None);
        let sp2 = memo.savepoint();
        let ga = memo.insert(LogicalOp::Scan(a), vec![], None);
        memo.insert(LogicalOp::Join(Predicate::join(ja, jb)), vec![ga, gb], None);
        memo.truncate_to(&sp2);
        assert_eq!(memo.n_groups(), 2);
        assert!(memo.savepoint_valid(&sp1));
        memo.truncate_to(&sp1);
        assert_eq!(memo.n_groups(), 1);
        memo.check_consistency();
    }

    #[test]
    #[should_panic(expected = "stale savepoint")]
    fn rolled_past_savepoint_is_stale() {
        let mut ctx = test_ctx();
        let a = ctx.instance_by_name("a", 0);
        let b = ctx.instance_by_name("b", 0);
        let mut memo = Memo::new(ctx);
        memo.insert(LogicalOp::Scan(a), vec![], None);
        let sp1 = memo.savepoint();
        memo.insert(LogicalOp::Scan(b), vec![], None);
        let sp2 = memo.savepoint();
        memo.truncate_to(&sp1);
        memo.truncate_to(&sp2); // sp2 died when sp1 rewound
    }

    #[test]
    fn truncate_rewinds_merge_damage() {
        // A savepoint taken before an explicit merge (the hardest mutation
        // to undo: union, expr transfer, parent rewrites, tombstones,
        // cascades) must restore the exact pre-merge structure.
        let mut ctx = test_ctx();
        let a = ctx.instance_by_name("a", 0);
        let b = ctx.instance_by_name("b", 0);
        let c = ctx.instance_by_name("c", 0);
        let ja = ctx.col(a, "a_key");
        let jb = ctx.col(b, "b_x");
        let jb2 = ctx.col(b, "b_key");
        let jc = ctx.col(c, "c_key");
        let mut memo = Memo::new(ctx);
        let ab1 =
            memo.insert_plan(&PlanNode::scan(a).join(PlanNode::scan(b), Predicate::join(ja, jb)));
        memo.insert_plan(
            &PlanNode::scan(a)
                .join(PlanNode::scan(b), Predicate::join(ja, jb))
                .join(PlanNode::scan(c), Predicate::join(jb2, jc)),
        );
        let sel = Predicate::on(jb2, Constraint::range(Some(0), Some(1_999)));
        let ab2 = {
            let j = memo.find(ab1);
            memo.insert(LogicalOp::Select(sel), vec![j], None)
        };
        let gc = memo.insert(LogicalOp::Scan(c), vec![], None);
        memo.insert(
            LogicalOp::Join(Predicate::join(jb2, jc)),
            vec![ab2, gc],
            None,
        );
        memo.check_consistency();
        let before = state_sig(&memo);
        let sp = memo.savepoint();
        memo.merge(ab1, ab2); // cascades into the two parent joins
        memo.check_consistency();
        assert_ne!(state_sig(&memo), before);
        memo.truncate_to(&sp);
        memo.check_consistency();
        assert_eq!(state_sig(&memo), before);
    }

    #[test]
    fn reset_keeps_context_and_version_monotone() {
        let mut ctx = test_ctx();
        let queries = two_query_fixture(&mut ctx);
        let mut memo = Memo::new(ctx);
        let r = memo.insert_plan(&queries[0]);
        memo.add_query_root(r);
        memo.build_batch_root();
        let sp = memo.savepoint();
        let v = memo.version();
        memo.reset();
        assert!(memo.version() > v);
        assert!(!memo.savepoint_valid(&sp));
        assert_eq!(memo.exprs_allocated(), 0);
        assert_eq!(memo.n_groups(), 0);
        assert!(memo.roots().is_empty());
        // The context survives: the same plans re-intern cleanly.
        let r = memo.insert_plan(&queries[0]);
        memo.add_query_root(r);
        memo.build_batch_root();
        memo.check_consistency();
    }

    #[test]
    fn delta_window_summarizes_growth_merges_and_tombstones() {
        let mut ctx = test_ctx();
        let a = ctx.instance_by_name("a", 0);
        let b = ctx.instance_by_name("b", 0);
        let ja = ctx.col(a, "a_key");
        let jb = ctx.col(b, "b_x");
        let mut memo = Memo::new(ctx);
        let ga = memo.insert(LogicalOp::Scan(a), vec![], None);
        memo.delta_begin();
        let gb = memo.insert(LogicalOp::Scan(b), vec![], None);
        let j = memo.insert(LogicalOp::Join(Predicate::join(ja, jb)), vec![ga, gb], None);
        let d = memo.delta_take();
        assert_eq!(d.exprs_before, 1);
        assert_eq!(d.exprs_after, 3);
        assert_eq!(d.new_exprs().count(), 2);
        assert!(d.merges.is_empty() && d.tombstoned.is_empty());
        assert!(!d.is_empty());
        let _ = j;

        // A merge window: a full-range select over `a` is declared equal to
        // its own child (same cardinality); the transferred expression
        // becomes a self-reference and is tombstoned.
        let ax = memo.ctx().col(a, "a_x");
        memo.delta_begin();
        let dup = memo.insert(
            LogicalOp::Select(Predicate::on(ax, Constraint::range(Some(0), Some(9)))),
            vec![ga],
            None,
        );
        assert_ne!(memo.find(dup), memo.find(ga));
        memo.merge(ga, dup);
        let d = memo.delta_take();
        assert_eq!(d.merges.len(), 1);
        assert_eq!(d.merges[0].0, memo.find(ga));
        assert_eq!(d.tombstoned.len(), 1);
    }

    #[test]
    fn batch_root_rebuild_reuses_the_root_group() {
        let mut ctx = test_ctx();
        let queries = two_query_fixture(&mut ctx);
        let mut memo = Memo::new(ctx);
        let r1 = memo.insert_plan(&queries[0]);
        memo.add_query_root(r1);
        let root = memo.build_batch_root();
        assert_eq!(memo.build_batch_root(), root, "idempotent when unchanged");
        let exprs_before = memo.exprs_allocated();
        let r2 = memo.insert_plan(&queries[1]);
        memo.add_query_root(r2);
        let root2 = memo.build_batch_root();
        assert_eq!(root2, memo.find(root), "root group id is stable");
        let live: Vec<ExprId> = memo.group_exprs(root2).collect();
        assert_eq!(live.len(), 1, "stale root expr is tombstoned");
        assert_eq!(memo.children(live[0]), &memo.roots()[..]);
        assert!(memo.exprs_allocated() > exprs_before);
        memo.check_consistency();
    }
}
