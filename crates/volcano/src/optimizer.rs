//! The *reference* physical optimizer: dynamic programming over
//! `(equivalence node, required sort order)` with sort enforcers and a
//! materialized-node overlay.
//!
//! This is the readable, hash-map-memoized specification of the DP — the
//! test oracle the compiled engine and the arena-based plan extractor in
//! `mqo-core` are differentially pinned against (its [`PlanTable`] hashes
//! `(GroupId, SortOrder)` keys; the production paths index dense arenas
//! instead). Nothing on a hot path calls it.
//!
//! `best_use_cost(root, overlay)` is exactly the paper's
//! `bestUseCost(Q, S)` (Section 2.4): the cost of the best plan that may
//! read the already-materialized nodes in the overlay but cannot
//! materialize anything new. `produce_cost(s, overlay)` is the cost of
//! computing `s` itself (excluding its own read option, so the definition is
//! well-founded); adding the sequential write cost yields the
//! materialization cost used by `bestCost`.
//!
//! Materialized results are stored unordered (the cheapest production plan
//! is written out as-is); consumers needing a sort order pay a sort on top
//! of the re-read. This is a documented simplification of Pyro's treatment
//! of physical properties — the cost trade-off that drives node selection is
//! preserved.

use std::collections::HashMap;

use crate::context::ColId;
use crate::cost::CostModel;
use crate::logical::LogicalOp;
use crate::memo::{ExprId, GroupId, Memo};
use crate::physical::{PhysOp, PhysPlan, SortOrder};

/// The set of materialized equivalence nodes visible to the DP, plus an
/// optional node whose own read option is disabled (used when costing the
/// production of that node).
#[derive(Clone, Debug, Default)]
pub struct MatOverlay {
    /// Materialized groups (memo representatives), sorted.
    materialized: Vec<GroupId>,
    /// Group being produced right now (its read option is disabled).
    exclude: Option<GroupId>,
}

impl MatOverlay {
    /// The empty overlay (plain Volcano optimization).
    pub fn empty() -> Self {
        Self::default()
    }

    /// An overlay over a set of materialized groups.
    pub fn new(memo: &Memo, groups: impl IntoIterator<Item = GroupId>) -> Self {
        let mut materialized: Vec<GroupId> = groups.into_iter().map(|g| memo.find(g)).collect();
        materialized.sort_unstable();
        materialized.dedup();
        MatOverlay {
            materialized,
            exclude: None,
        }
    }

    /// Returns a copy excluding `g`'s read option.
    pub fn excluding(&self, g: GroupId) -> Self {
        MatOverlay {
            materialized: self.materialized.clone(),
            exclude: Some(g),
        }
    }

    /// Whether `g` may be read from the materialized store.
    pub fn readable(&self, g: GroupId) -> bool {
        self.exclude != Some(g) && self.materialized.binary_search(&g).is_ok()
    }

    /// The materialized set.
    pub fn materialized(&self) -> &[GroupId] {
        &self.materialized
    }
}

/// One resolved implementation choice, cached per `(group, order)`.
#[derive(Clone, Debug)]
enum Choice {
    /// Read the materialized result (plus a sort if an order is required).
    ReadMat,
    /// Implement via a memo expression.
    Impl {
        expr: ExprId,
        op: PhysOp,
        child_reqs: Vec<SortOrder>,
        out_order: SortOrder,
        op_cost: f64,
    },
    /// Take the best unordered plan and sort it.
    Enforce,
}

#[derive(Clone, Debug)]
struct Entry {
    cost: f64,
    choice: Choice,
}

/// Memoization table for one DP run (one overlay).
#[derive(Debug, Default)]
pub struct PlanTable {
    cache: HashMap<(GroupId, SortOrder), Entry>,
}

impl PlanTable {
    /// A fresh table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of `(group, order)` states computed.
    pub fn states(&self) -> usize {
        self.cache.len()
    }
}

/// The physical optimizer over a frozen memo.
pub struct Optimizer<'a> {
    memo: &'a Memo,
    cm: &'a dyn CostModel,
    /// Natural storage order of each group's cheapest production plan
    /// (computed on demand; materialized results are stored in this order).
    stored: std::cell::RefCell<HashMap<GroupId, SortOrder>>,
}

impl<'a> Optimizer<'a> {
    /// Creates an optimizer over `memo` using `cost_model`.
    pub fn new(memo: &'a Memo, cost_model: &'a dyn CostModel) -> Self {
        Optimizer {
            memo,
            cm: cost_model,
            stored: std::cell::RefCell::new(HashMap::new()),
        }
    }

    /// The order a materialized copy of `g` would be stored in: the output
    /// order of its cheapest production plan under no materializations.
    pub fn stored_order(&self, g: GroupId) -> SortOrder {
        let g = self.memo.find(g);
        if let Some(o) = self.stored.borrow().get(&g) {
            return o.clone();
        }
        let mut table = PlanTable::new();
        let empty = MatOverlay::empty();
        let _ = self.best(g, &SortOrder::none(), &empty, &mut table);
        let entry = table.cache[&(g, SortOrder::none())].clone();
        let order = match entry.choice {
            Choice::Impl { op, expr, .. } => match op {
                PhysOp::TableScan { inst } | PhysOp::IndexScan { inst } => {
                    SortOrder::on(self.memo.ctx().clustered_order(inst))
                }
                PhysOp::Filter => {
                    let child = self.memo.find(self.memo.expr(expr).children[0]);
                    self.stored_order(child)
                }
                PhysOp::MergeJoin { left_keys, .. } => SortOrder::on(left_keys),
                PhysOp::SortAgg { group_by } => SortOrder::on(group_by),
                _ => SortOrder::none(),
            },
            // Unreachable for an empty overlay and the trivial requirement,
            // but harmless fallbacks.
            Choice::ReadMat | Choice::Enforce => SortOrder::none(),
        };
        self.stored.borrow_mut().insert(g, order.clone());
        order
    }

    /// Output blocks of a group under the cost model's block size.
    pub fn blocks(&self, g: GroupId) -> f64 {
        self.memo.props(g).blocks(self.cm.block_size())
    }

    /// `bestUseCost`: cost of the best plan for `g` (unordered requirement)
    /// that may read overlay nodes but materializes nothing new.
    pub fn best_use_cost(&self, g: GroupId, overlay: &MatOverlay, table: &mut PlanTable) -> f64 {
        self.best(self.memo.find(g), &SortOrder::none(), overlay, table)
    }

    /// Cost of producing `g`'s result (for materialization): like
    /// `best_use_cost` but `g` itself cannot be read from the store (the
    /// production of a node must not read its own copy). The sequential
    /// write cost is *not* included. Runs on a private plan table because
    /// the excluded-read overlay differs from the caller's.
    pub fn produce_cost(&self, g: GroupId, overlay: &MatOverlay) -> f64 {
        let g = self.memo.find(g);
        let overlay = overlay.excluding(g);
        let mut local = PlanTable::new();
        self.best(g, &SortOrder::none(), &overlay, &mut local)
    }

    /// The DP: minimum cost of producing `g` with the required order.
    fn best(
        &self,
        g: GroupId,
        req: &SortOrder,
        overlay: &MatOverlay,
        table: &mut PlanTable,
    ) -> f64 {
        let g = self.memo.find(g);
        let key = (g, req.clone());
        if let Some(e) = table.cache.get(&key) {
            return e.cost;
        }
        let entry = self.compute(g, req, overlay, table);
        let cost = entry.cost;
        table.cache.insert(key, entry);
        cost
    }

    fn compute(
        &self,
        g: GroupId,
        req: &SortOrder,
        overlay: &MatOverlay,
        table: &mut PlanTable,
    ) -> Entry {
        let mut best: Option<Entry> = None;
        let consider = |e: Entry, best: &mut Option<Entry>| {
            if best.as_ref().is_none_or(|b| e.cost < b.cost) {
                *best = Some(e);
            }
        };

        // Option 1: read the materialized result (stored in the natural
        // order of its production plan; pay a sort only if the requirement
        // is not satisfied by that order).
        if overlay.readable(g) {
            let blocks = self.blocks(g);
            let mut cost = self.cm.materialize_read(blocks);
            if !self.stored_order(g).satisfies(req) {
                cost += self.cm.sort(blocks);
            }
            consider(
                Entry {
                    cost,
                    choice: Choice::ReadMat,
                },
                &mut best,
            );
        }

        // Option 2: implement some expression of the group.
        let exprs: Vec<ExprId> = self.memo.group_exprs(g).collect();
        for e in exprs {
            self.implementations(g, e, req, overlay, table, &mut |entry| {
                consider(entry, &mut best)
            });
        }

        // Option 3: enforcer — best unordered plan plus an explicit sort.
        if !req.is_none() {
            let unordered = self.best(g, &SortOrder::none(), overlay, table);
            let cost = unordered + self.cm.sort(self.blocks(g));
            consider(
                Entry {
                    cost,
                    choice: Choice::Enforce,
                },
                &mut best,
            );
        }

        best.unwrap_or_else(|| {
            panic!(
                "no physical plan for group {:?} (req {:?}); memo inconsistent",
                g, req
            )
        })
    }

    /// Enumerates physical implementations of expression `e`, calling
    /// `consider` for each whose output satisfies `req`.
    fn implementations(
        &self,
        g: GroupId,
        e: ExprId,
        req: &SortOrder,
        overlay: &MatOverlay,
        table: &mut PlanTable,
        consider: &mut dyn FnMut(Entry),
    ) {
        let out_blocks = self.blocks(g);
        let expr = self.memo.expr(e);
        match expr.op {
            LogicalOp::Scan(inst) => {
                let order = SortOrder::on(self.memo.ctx().clustered_order(*inst));
                if order.satisfies(req) {
                    let op_cost = self.cm.table_scan(out_blocks);
                    consider(Entry {
                        cost: op_cost,
                        choice: Choice::Impl {
                            expr: e,
                            op: PhysOp::TableScan { inst: *inst },
                            child_reqs: vec![],
                            out_order: order,
                            op_cost,
                        },
                    });
                }
            }
            LogicalOp::Select(pred) => {
                let child = self.memo.find(expr.children[0]);
                // (a) In-stream filter: order-preserving, so the child takes
                // over the requirement.
                {
                    let child_cost = self.best(child, req, overlay, table);
                    let op_cost = self.cm.filter(self.blocks(child));
                    consider(Entry {
                        cost: child_cost + op_cost,
                        choice: Choice::Impl {
                            expr: e,
                            op: PhysOp::Filter,
                            child_reqs: vec![req.clone()],
                            out_order: req.clone(),
                            op_cost,
                        },
                    });
                }
                // (b) Clustered-index scan: child must be a bare table scan
                // and the predicate must constrain the leading PK column.
                for ce in self.memo.group_exprs(child) {
                    let &LogicalOp::Scan(inst) = self.memo.op(ce) else {
                        continue;
                    };
                    let pk_order = self.memo.ctx().clustered_order(inst);
                    let Some(&lead) = pk_order.first() else {
                        continue;
                    };
                    let Some(c) = pred.constraints.get(&lead) else {
                        continue;
                    };
                    let order = SortOrder::on(pk_order);
                    if !order.satisfies(req) {
                        continue;
                    }
                    let frac = c.selectivity(&self.memo.ctx().col_stats(lead));
                    let matched = (self.blocks(child) * frac).ceil().max(1.0);
                    let op_cost = self.cm.index_scan(matched) + self.cm.filter(matched);
                    consider(Entry {
                        cost: op_cost,
                        choice: Choice::Impl {
                            expr: e,
                            op: PhysOp::IndexScan { inst },
                            child_reqs: vec![],
                            out_order: order,
                            op_cost,
                        },
                    });
                }
            }
            LogicalOp::Join(pred) => {
                let (l, r) = (
                    self.memo.find(expr.children[0]),
                    self.memo.find(expr.children[1]),
                );
                let keys = self.join_keys(pred, l, r);
                for swapped in [false, true] {
                    let (outer, inner) = if swapped { (r, l) } else { (l, r) };
                    // Block nested loops: unordered output.
                    if req.is_none() {
                        let outer_cost = self.best(outer, &SortOrder::none(), overlay, table);
                        let inner_cost = self.best(inner, &SortOrder::none(), overlay, table);
                        let op_cost =
                            self.cm
                                .nl_join(self.blocks(outer), self.blocks(inner), out_blocks);
                        consider(Entry {
                            cost: outer_cost + inner_cost + op_cost,
                            choice: Choice::Impl {
                                expr: e,
                                op: PhysOp::BlockNlJoin { swapped },
                                child_reqs: vec![SortOrder::none(), SortOrder::none()],
                                out_order: SortOrder::none(),
                                op_cost,
                            },
                        });
                    }
                    // Merge join: output sorted by the outer-side keys.
                    if let Some((lk, rk)) = &keys {
                        let (ok, ik) = if swapped {
                            (rk.clone(), lk.clone())
                        } else {
                            (lk.clone(), rk.clone())
                        };
                        let out_order = SortOrder::on(ok.clone());
                        if out_order.satisfies(req) {
                            let outer_cost =
                                self.best(outer, &SortOrder::on(ok.clone()), overlay, table);
                            let inner_cost =
                                self.best(inner, &SortOrder::on(ik.clone()), overlay, table);
                            let op_cost = self.cm.merge_join(
                                self.blocks(outer),
                                self.blocks(inner),
                                out_blocks,
                            );
                            // Child requirements are listed in memo child
                            // order (left, right), not outer/inner order.
                            let child_reqs = if swapped {
                                vec![SortOrder::on(ik.clone()), SortOrder::on(ok.clone())]
                            } else {
                                vec![SortOrder::on(ok.clone()), SortOrder::on(ik.clone())]
                            };
                            consider(Entry {
                                cost: outer_cost + inner_cost + op_cost,
                                choice: Choice::Impl {
                                    expr: e,
                                    op: PhysOp::MergeJoin {
                                        left_keys: ok,
                                        right_keys: ik,
                                        swapped,
                                    },
                                    child_reqs,
                                    out_order,
                                    op_cost,
                                },
                            });
                        }
                    }
                }
            }
            LogicalOp::Aggregate(spec) => {
                let child = self.memo.find(expr.children[0]);
                if spec.is_scalar() {
                    let child_cost = self.best(child, &SortOrder::none(), overlay, table);
                    let op_cost = self.cm.scalar_agg(self.blocks(child));
                    // One row satisfies any ordering requirement.
                    consider(Entry {
                        cost: child_cost + op_cost,
                        choice: Choice::Impl {
                            expr: e,
                            op: PhysOp::ScalarAgg,
                            child_reqs: vec![SortOrder::none()],
                            out_order: req.clone(),
                            op_cost,
                        },
                    });
                } else {
                    let gb = SortOrder::on(spec.group_by.clone());
                    if gb.satisfies(req) {
                        let child_cost = self.best(child, &gb, overlay, table);
                        let op_cost = self.cm.sort_agg(self.blocks(child), out_blocks);
                        consider(Entry {
                            cost: child_cost + op_cost,
                            choice: Choice::Impl {
                                expr: e,
                                op: PhysOp::SortAgg {
                                    group_by: spec.group_by.clone(),
                                },
                                child_reqs: vec![gb.clone()],
                                out_order: gb,
                                op_cost,
                            },
                        });
                    }
                }
            }
            LogicalOp::Root => {
                if req.is_none() {
                    let mut total = 0.0;
                    let mut child_reqs = Vec::with_capacity(expr.children.len());
                    for &c in expr.children {
                        total += self.best(self.memo.find(c), &SortOrder::none(), overlay, table);
                        child_reqs.push(SortOrder::none());
                    }
                    consider(Entry {
                        cost: total,
                        choice: Choice::Impl {
                            expr: e,
                            op: PhysOp::Root,
                            child_reqs,
                            out_order: SortOrder::none(),
                            op_cost: 0.0,
                        },
                    });
                }
            }
        }
    }

    /// Extracts the spanning merge-join keys of a join predicate: pairs
    /// `(left col, right col)` with one side covered by each child, in
    /// canonical order. Returns `None` when no spanning equi atom exists.
    fn join_keys(
        &self,
        pred: &crate::expr::Predicate,
        l: GroupId,
        r: GroupId,
    ) -> Option<(Vec<ColId>, Vec<ColId>)> {
        let mut lk = Vec::new();
        let mut rk = Vec::new();
        for &(a, b) in &pred.equi {
            if self.memo.group_covers(l, a) && self.memo.group_covers(r, b) {
                lk.push(a);
                rk.push(b);
            } else if self.memo.group_covers(l, b) && self.memo.group_covers(r, a) {
                lk.push(b);
                rk.push(a);
            }
        }
        if lk.is_empty() {
            None
        } else {
            Some((lk, rk))
        }
    }

    /// Extracts the chosen physical plan for `(g, req)`. The DP for the
    /// same overlay must have been run on `table` already (it is re-entered
    /// read-only here).
    pub fn extract_plan(
        &self,
        g: GroupId,
        req: &SortOrder,
        overlay: &MatOverlay,
        table: &mut PlanTable,
    ) -> PhysPlan {
        let g = self.memo.find(g);
        let total = self.best(g, req, overlay, table);
        let entry = table.cache[&(g, req.clone())].clone();
        let rows = self.memo.props(g).rows;
        match entry.choice {
            Choice::ReadMat => {
                let blocks = self.blocks(g);
                let stored = self.stored_order(g);
                let mut op_cost = self.cm.materialize_read(blocks);
                let order = if stored.satisfies(req) {
                    stored
                } else {
                    op_cost += self.cm.sort(blocks);
                    req.clone()
                };
                PhysPlan {
                    op: PhysOp::MaterializedRead { group: g },
                    expr: None,
                    group: g,
                    op_cost,
                    total_cost: total,
                    order,
                    rows,
                    children: vec![],
                }
            }
            Choice::Enforce => {
                let inner = self.extract_plan(g, &SortOrder::none(), overlay, table);
                let op_cost = self.cm.sort(self.blocks(g));
                PhysPlan {
                    op: PhysOp::Sort {
                        keys: req.0.clone(),
                    },
                    expr: None,
                    group: g,
                    op_cost,
                    total_cost: total,
                    order: req.clone(),
                    rows,
                    children: vec![inner],
                }
            }
            Choice::Impl {
                expr,
                op,
                child_reqs,
                out_order,
                op_cost,
            } => {
                let children = self
                    .memo
                    .children(expr)
                    .iter()
                    .copied()
                    .zip(child_reqs.iter())
                    .map(|(c, creq)| self.extract_plan(self.memo.find(c), creq, overlay, table))
                    .collect::<Vec<_>>();
                // Index scans implement Select(Scan) without running the
                // child plan.
                let children = if matches!(op, PhysOp::IndexScan { .. } | PhysOp::TableScan { .. })
                {
                    vec![]
                } else {
                    children
                };
                PhysPlan {
                    op,
                    expr: Some(expr),
                    group: g,
                    op_cost,
                    total_cost: total,
                    order: out_order,
                    rows,
                    children,
                }
            }
        }
    }

    /// Total blocks written when materializing `g` (helper for `bestCost`).
    pub fn write_cost(&self, g: GroupId) -> f64 {
        self.cm.materialize_write(self.blocks(self.memo.find(g)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::DagContext;
    use crate::cost::{DiskCostModel, UnitCostModel};
    use crate::expr::{Constraint, Predicate};
    use crate::logical::PlanNode;
    use crate::rules::{expand, RuleSet};
    use mqo_catalog::{Catalog, TableBuilder};

    fn ctx() -> DagContext {
        let mut cat = Catalog::new();
        for (name, rows) in [("a", 10_000.0), ("b", 20_000.0), ("c", 5_000.0)] {
            cat.add_table(
                TableBuilder::new(name, rows)
                    .key_column(format!("{name}_key"), 4)
                    .column(
                        format!("{name}_fk"),
                        rows / 10.0,
                        (0, (rows as i64 / 10) - 1),
                        4,
                    )
                    .column(format!("{name}_x"), 100.0, (0, 99), 4)
                    .primary_key(&[&format!("{name}_key")])
                    .build(),
            );
        }
        DagContext::new(cat)
    }

    #[test]
    fn scan_cost_matches_model() {
        let mut ctx = ctx();
        let a = ctx.instance_by_name("a", 0);
        let mut memo = Memo::new(ctx);
        let g = memo.insert_plan(&PlanNode::scan(a));
        let cm = DiskCostModel::paper();
        let opt = Optimizer::new(&memo, &cm);
        let mut table = PlanTable::new();
        let cost = opt.best_use_cost(g, &MatOverlay::empty(), &mut table);
        let blocks = opt.blocks(g);
        assert!((cost - cm.table_scan(blocks)).abs() < 1e-9);
    }

    #[test]
    fn index_scan_beats_full_scan_for_selective_predicates() {
        let mut ctx = ctx();
        let a = ctx.instance_by_name("a", 0);
        let key = ctx.col(a, "a_key");
        let q = PlanNode::scan(a).select(Predicate::on(key, Constraint::le(99)));
        let mut memo = Memo::new(ctx);
        let g = memo.insert_plan(&q);
        let cm = DiskCostModel::paper();
        let opt = Optimizer::new(&memo, &cm);
        let mut table = PlanTable::new();
        let cost = opt.best_use_cost(g, &MatOverlay::empty(), &mut table);
        // Full scan + filter of table a would cost its scan; the index path
        // must be cheaper (1% selectivity on the clustered key).
        let scan_group = memo.group_children(g)[0];
        let full = cm.table_scan(opt.blocks(scan_group)) + cm.filter(opt.blocks(scan_group));
        assert!(cost < full, "index scan {cost} should beat {full}");
        let plan = opt.extract_plan(g, &SortOrder::none(), &MatOverlay::empty(), &mut table);
        assert!(matches!(plan.op, PhysOp::IndexScan { .. }));
    }

    #[test]
    fn join_picks_some_plan_and_extracts() {
        let mut ctx = ctx();
        let a = ctx.instance_by_name("a", 0);
        let b = ctx.instance_by_name("b", 0);
        let p = Predicate::join(ctx.col(a, "a_key"), ctx.col(b, "b_fk"));
        let q = PlanNode::scan(a).join(PlanNode::scan(b), p);
        let mut memo = Memo::new(ctx);
        let g = memo.insert_plan(&q);
        expand(&mut memo, &RuleSet::joins_only());
        let cm = DiskCostModel::paper();
        let opt = Optimizer::new(&memo, &cm);
        let mut table = PlanTable::new();
        let cost = opt.best_use_cost(g, &MatOverlay::empty(), &mut table);
        assert!(cost.is_finite() && cost > 0.0);
        let plan = opt.extract_plan(g, &SortOrder::none(), &MatOverlay::empty(), &mut table);
        assert!(matches!(
            plan.op,
            PhysOp::MergeJoin { .. } | PhysOp::BlockNlJoin { .. }
        ));
        assert_eq!(plan.children.len(), 2);
        assert!((plan.total_cost - cost).abs() < 1e-9);
    }

    #[test]
    fn materialized_read_used_when_cheaper() {
        let mut ctx = ctx();
        let a = ctx.instance_by_name("a", 0);
        let b = ctx.instance_by_name("b", 0);
        // A selective predicate keeps the join result tiny, so re-reading the
        // materialized result is clearly cheaper than recomputing the join.
        let p = Predicate::join(ctx.col(a, "a_key"), ctx.col(b, "b_fk"))
            .and(&Predicate::on(ctx.col(a, "a_x"), Constraint::eq(3)));
        let q = PlanNode::scan(a).join(PlanNode::scan(b), p);
        let mut memo = Memo::new(ctx);
        let g = memo.insert_plan(&q);
        expand(&mut memo, &RuleSet::joins_only());
        let cm = DiskCostModel::paper();
        let opt = Optimizer::new(&memo, &cm);

        let mut t1 = PlanTable::new();
        let plain = opt.best_use_cost(g, &MatOverlay::empty(), &mut t1);
        let overlay = MatOverlay::new(&memo, [g]);
        let mut t2 = PlanTable::new();
        let with_mat = opt.best_use_cost(g, &overlay, &mut t2);
        assert!(
            with_mat <= plain,
            "reading the materialized join must not cost more"
        );
        let plan = opt.extract_plan(g, &SortOrder::none(), &overlay, &mut t2);
        assert!(matches!(plan.op, PhysOp::MaterializedRead { .. }));
    }

    #[test]
    fn produce_cost_ignores_own_materialization() {
        let mut ctx = ctx();
        let a = ctx.instance_by_name("a", 0);
        let mut memo = Memo::new(ctx);
        let g = memo.insert_plan(&PlanNode::scan(a));
        let cm = DiskCostModel::paper();
        let opt = Optimizer::new(&memo, &cm);
        let overlay = MatOverlay::new(&memo, [g]);
        let produce = opt.produce_cost(g, &overlay);
        // Must equal the plain scan, not the (cheaper or pathological)
        // self-read.
        assert!((produce - cm.table_scan(opt.blocks(g))).abs() < 1e-9);
    }

    #[test]
    fn required_order_adds_sort_or_picks_index_order() {
        let mut ctx = ctx();
        let a = ctx.instance_by_name("a", 0);
        let akey = ctx.col(a, "a_key");
        let ax = ctx.col(a, "a_x");
        let mut memo = Memo::new(ctx);
        let g = memo.insert_plan(&PlanNode::scan(a));
        let cm = DiskCostModel::paper();
        let opt = Optimizer::new(&memo, &cm);
        let mut table = PlanTable::new();
        // PK order comes free from the clustered scan.
        let by_key = opt.best(
            g,
            &SortOrder::on(vec![akey]),
            &MatOverlay::empty(),
            &mut table,
        );
        let unordered = opt.best_use_cost(g, &MatOverlay::empty(), &mut table);
        assert!((by_key - unordered).abs() < 1e-9);
        // A non-key order needs an enforcer.
        let by_x = opt.best(
            g,
            &SortOrder::on(vec![ax]),
            &MatOverlay::empty(),
            &mut table,
        );
        assert!(by_x > unordered);
    }

    #[test]
    fn unit_model_reproduces_example_scan_join_costs() {
        let mut ctx = ctx();
        let a = ctx.instance_by_name("a", 0);
        let b = ctx.instance_by_name("b", 0);
        let p = Predicate::join(ctx.col(a, "a_key"), ctx.col(b, "b_fk"));
        let q = PlanNode::scan(a).join(PlanNode::scan(b), p);
        let mut memo = Memo::new(ctx);
        let g = memo.insert_plan(&q);
        let cm = UnitCostModel;
        let opt = Optimizer::new(&memo, &cm);
        let mut table = PlanTable::new();
        let cost = opt.best_use_cost(g, &MatOverlay::empty(), &mut table);
        // 2 scans + 1 join = 120.
        assert!((cost - 120.0).abs() < 1e-9);
    }
}
