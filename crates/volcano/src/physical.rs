//! Physical operators and physical properties (sort orders).
//!
//! The physical operator set matches Section 6: "sort-based aggregation,
//! merge join, nested loop join, indexed selection and relation scan",
//! plus the sort enforcer, the in-stream filter, and reads of materialized
//! results. Physical properties are sort orders with prefix satisfaction:
//! a stream sorted by `[a, b]` satisfies a requirement of `[a]`.

use crate::context::{ColId, InstanceId};
use crate::memo::{ExprId, GroupId};

/// A sort order: the (possibly empty) list of columns the stream is sorted
/// by, major first. Empty means "no particular order".
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SortOrder(pub Vec<ColId>);

impl SortOrder {
    /// The "no order" value.
    pub fn none() -> Self {
        SortOrder(Vec::new())
    }

    /// An order on the given columns.
    pub fn on(cols: Vec<ColId>) -> Self {
        SortOrder(cols)
    }

    /// Whether this is the trivial (unordered) property.
    pub fn is_none(&self) -> bool {
        self.0.is_empty()
    }

    /// Whether a stream with order `self` satisfies `required`: `required`
    /// must be a prefix of `self` (the trivial requirement is always
    /// satisfied).
    pub fn satisfies(&self, required: &SortOrder) -> bool {
        required.0.len() <= self.0.len() && self.0[..required.0.len()] == required.0[..]
    }
}

/// A physical operator choice for one memo expression (or a leaf read).
#[derive(Clone, Debug, PartialEq)]
pub enum PhysOp {
    /// Sequential scan of a base table instance.
    TableScan { inst: InstanceId },
    /// Clustered-index range scan of a base table instance: applies the
    /// selection's constraint on the leading primary-key column to touch
    /// only the matching fraction, filtering the rest on the fly.
    IndexScan { inst: InstanceId },
    /// In-stream filter (order-preserving).
    Filter,
    /// Merge join on the given left/right key columns (inputs must arrive
    /// sorted by them; output is sorted by the left keys).
    MergeJoin {
        left_keys: Vec<ColId>,
        right_keys: Vec<ColId>,
        /// Whether the memo expression's children are swapped (the second
        /// child plays the left role).
        swapped: bool,
    },
    /// Block nested-loops join (output unordered).
    BlockNlJoin {
        /// Whether the memo expression's children are swapped (the second
        /// child is the outer).
        swapped: bool,
    },
    /// Sort-based aggregation (input sorted by the group-by columns; output
    /// sorted likewise).
    SortAgg { group_by: Vec<ColId> },
    /// Ungrouped aggregation producing one row.
    ScalarAgg,
    /// Explicit sort enforcer.
    Sort { keys: Vec<ColId> },
    /// Read of a materialized equivalence node.
    MaterializedRead { group: GroupId },
    /// The dummy batch root.
    Root,
}

/// A fully extracted physical plan (an operator tree, for printing and
/// inspection; costing happens in the optimizer's DP).
#[derive(Clone, Debug)]
pub struct PhysPlan {
    pub op: PhysOp,
    /// The memo expression this node implements, when applicable.
    pub expr: Option<ExprId>,
    /// The group whose result this node produces.
    pub group: GroupId,
    /// Cost of this operator alone.
    pub op_cost: f64,
    /// Cost of the whole subtree.
    pub total_cost: f64,
    /// Output sort order.
    pub order: SortOrder,
    /// Estimated output rows.
    pub rows: f64,
    pub children: Vec<PhysPlan>,
}

impl PhysPlan {
    /// Pretty-prints the plan as an indented tree using `name` to render
    /// operator details.
    pub fn render(&self, name: impl Fn(&PhysPlan) -> String + Copy) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0, name);
        out
    }

    fn render_into(
        &self,
        out: &mut String,
        depth: usize,
        name: impl Fn(&PhysPlan) -> String + Copy,
    ) {
        use std::fmt::Write;
        let _ = writeln!(
            out,
            "{:indent$}{} (cost={:.1}, rows={:.0})",
            "",
            name(self),
            self.total_cost,
            self.rows,
            indent = depth * 2
        );
        for c in &self.children {
            c.render_into(out, depth + 1, name);
        }
    }

    /// Iterates over all nodes of the tree.
    pub fn nodes(&self) -> Vec<&PhysPlan> {
        let mut out = vec![self];
        let mut i = 0;
        while i < out.len() {
            let node: &PhysPlan = out[i];
            for c in &node.children {
                out.push(c);
            }
            i += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> ColId {
        ColId::Synth(i)
    }

    #[test]
    fn prefix_satisfaction() {
        let provided = SortOrder::on(vec![c(0), c(1), c(2)]);
        assert!(provided.satisfies(&SortOrder::none()));
        assert!(provided.satisfies(&SortOrder::on(vec![c(0)])));
        assert!(provided.satisfies(&SortOrder::on(vec![c(0), c(1)])));
        assert!(provided.satisfies(&provided));
        assert!(!provided.satisfies(&SortOrder::on(vec![c(1)])));
        assert!(!provided.satisfies(&SortOrder::on(vec![c(0), c(2)])));
        assert!(!provided.satisfies(&SortOrder::on(vec![c(0), c(1), c(2), c(3)])));
    }

    #[test]
    fn none_satisfies_only_none() {
        let none = SortOrder::none();
        assert!(none.satisfies(&SortOrder::none()));
        assert!(!none.satisfies(&SortOrder::on(vec![c(0)])));
    }
}
