//! Plan rendering: human-readable physical plans.

use crate::memo::Memo;
use crate::physical::{PhysOp, PhysPlan};

/// Renders a physical plan against its memo (resolving instance and column
/// names).
pub fn render_plan(plan: &PhysPlan, memo: &Memo) -> String {
    plan.render(|node| describe(node, memo))
}

fn describe(node: &PhysPlan, memo: &Memo) -> String {
    let ctx = memo.ctx();
    match &node.op {
        PhysOp::TableScan { inst } => format!("TableScan({})", ctx.instance_name(*inst)),
        PhysOp::IndexScan { inst } => format!("IndexScan({})", ctx.instance_name(*inst)),
        PhysOp::Filter => "Filter".to_string(),
        PhysOp::MergeJoin {
            left_keys,
            right_keys,
            ..
        } => {
            let keys: Vec<String> = left_keys
                .iter()
                .zip(right_keys.iter())
                .map(|(l, r)| format!("{}={}", ctx.col_name(*l), ctx.col_name(*r)))
                .collect();
            format!("MergeJoin({})", keys.join(", "))
        }
        PhysOp::BlockNlJoin { .. } => "BlockNlJoin".to_string(),
        PhysOp::SortAgg { group_by } => {
            let cols: Vec<String> = group_by.iter().map(|c| ctx.col_name(*c)).collect();
            format!("SortAgg(by {})", cols.join(", "))
        }
        PhysOp::ScalarAgg => "ScalarAgg".to_string(),
        PhysOp::Sort { keys } => {
            let cols: Vec<String> = keys.iter().map(|c| ctx.col_name(*c)).collect();
            format!("Sort({})", cols.join(", "))
        }
        PhysOp::MaterializedRead { group } => format!("ReadMat(group {})", group.0),
        PhysOp::Root => "Batch".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::DagContext;
    use crate::cost::DiskCostModel;
    use crate::expr::Predicate;
    use crate::logical::PlanNode;
    use crate::optimizer::{MatOverlay, Optimizer, PlanTable};
    use crate::physical::SortOrder;
    use mqo_catalog::{Catalog, TableBuilder};

    #[test]
    fn rendering_contains_operator_names() {
        let mut cat = Catalog::new();
        cat.add_table(
            TableBuilder::new("t", 1000.0)
                .key_column("t_key", 4)
                .column("t_fk", 100.0, (0, 99), 4)
                .primary_key(&["t_key"])
                .build(),
        );
        cat.add_table(
            TableBuilder::new("u", 500.0)
                .key_column("u_key", 4)
                .primary_key(&["u_key"])
                .build(),
        );
        let mut ctx = DagContext::new(cat);
        let t = ctx.instance_by_name("t", 0);
        let u = ctx.instance_by_name("u", 0);
        let p = Predicate::join(ctx.col(t, "t_fk"), ctx.col(u, "u_key"));
        let q = PlanNode::scan(t).join(PlanNode::scan(u), p);
        let mut memo = crate::memo::Memo::new(ctx);
        let g = memo.insert_plan(&q);
        let cm = DiskCostModel::paper();
        let opt = Optimizer::new(&memo, &cm);
        let mut table = PlanTable::new();
        let _ = opt.best_use_cost(g, &MatOverlay::empty(), &mut table);
        let plan = opt.extract_plan(g, &SortOrder::none(), &MatOverlay::empty(), &mut table);
        let text = render_plan(&plan, &memo);
        assert!(text.contains("Join"), "{text}");
        assert!(text.contains("t") && text.contains("u"), "{text}");
    }
}
