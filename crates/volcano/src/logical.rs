//! Logical operators, plan trees, and logical properties of equivalence
//! nodes.
//!
//! Logical properties (leaf multiset, applied predicate, cardinality, row
//! width) are *group-consistent by construction*: cardinality is computed
//! from the multiset of leaf inputs and the normalized set of applied
//! predicate atoms, both of which are invariant under join reordering and
//! predicate push-down/subsumption rewrites. Alternative expressions of the
//! same result therefore always agree on the estimate.

use crate::context::{ColId, DagContext, InstanceId};
use crate::expr::Predicate;
use crate::memo::GroupId;

/// Aggregate functions. All but `Avg` are decomposable (an aggregate over a
/// finer grouping can be re-aggregated to a coarser one), which is what the
/// aggregate-subsumption rule exploits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AggFunc {
    Sum,
    Min,
    Max,
    Count,
    Avg,
}

impl AggFunc {
    /// The function used to re-aggregate partial results of `self`, if
    /// decomposable.
    pub fn reaggregate(self) -> Option<AggFunc> {
        match self {
            AggFunc::Sum => Some(AggFunc::Sum),
            AggFunc::Min => Some(AggFunc::Min),
            AggFunc::Max => Some(AggFunc::Max),
            AggFunc::Count => Some(AggFunc::Sum),
            AggFunc::Avg => None,
        }
    }
}

/// One aggregate call: `output := func(input)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AggCall {
    pub func: AggFunc,
    pub input: ColId,
    /// The synthetic column holding the result (registered in the
    /// [`DagContext`]). Shared subexpressions must share output columns.
    pub output: ColId,
}

/// An aggregation: `GROUP BY group_by` computing `aggs`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct AggSpec {
    /// Grouping columns, canonically sorted.
    pub group_by: Vec<ColId>,
    /// Aggregate calls, canonically sorted by output column.
    pub aggs: Vec<AggCall>,
}

impl AggSpec {
    /// Builds a spec with canonical ordering.
    pub fn new(mut group_by: Vec<ColId>, mut aggs: Vec<AggCall>) -> Self {
        group_by.sort_unstable();
        group_by.dedup();
        aggs.sort_unstable_by_key(|a| a.output);
        AggSpec { group_by, aggs }
    }

    /// Whether this is a scalar (ungrouped) aggregate.
    pub fn is_scalar(&self) -> bool {
        self.group_by.is_empty()
    }
}

/// A logical operator. Join children are stored in canonical order in the
/// memo (commutativity is implicit; physical implementations consider both
/// orientations).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum LogicalOp {
    /// Scan of a base-table instance.
    Scan(InstanceId),
    /// Selection; one child.
    Select(Predicate),
    /// Inner join; two children. The predicate holds the atoms introduced
    /// *at this join* (atoms applied below live in the children).
    Join(Predicate),
    /// Aggregation; one child.
    Aggregate(AggSpec),
    /// The dummy batch root (Section 2.2): "a dummy operation node, which
    /// does nothing, but has the root equivalence nodes of all the queries
    /// as its inputs". Arbitrarily many children.
    Root,
}

impl LogicalOp {
    /// Number of children the operator expects (`None` = variadic).
    pub fn arity(&self) -> Option<usize> {
        match self {
            LogicalOp::Scan(_) => Some(0),
            LogicalOp::Select(_) | LogicalOp::Aggregate(_) => Some(1),
            LogicalOp::Join(_) => Some(2),
            LogicalOp::Root => None,
        }
    }
}

/// A leaf input of an SPJ region: either a base-table instance or the output
/// of an aggregate group.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Leaf {
    Instance(InstanceId),
    Agg(GroupId),
}

/// Logical properties of an equivalence node.
#[derive(Clone, Debug)]
pub struct LogicalProps {
    /// Sorted multiset of leaf inputs.
    pub leaves: Vec<Leaf>,
    /// Normalized conjunction of all predicate atoms applied within this SPJ
    /// region (empty for aggregate/root groups).
    pub applied: Predicate,
    /// Estimated output cardinality.
    pub rows: f64,
    /// Estimated output row width in bytes.
    pub width: u32,
}

impl LogicalProps {
    /// Output size in blocks of `block_size` bytes (at least 1 when rows>0).
    pub fn blocks(&self, block_size: u32) -> f64 {
        if self.rows <= 0.0 {
            // Even an empty result costs one block to touch.
            return 1.0;
        }
        ((self.rows * f64::from(self.width)) / f64::from(block_size))
            .ceil()
            .max(1.0)
    }

    /// Whether this group's output exposes `col` (so a predicate on it can
    /// be evaluated here). `producer` resolves a synthetic column to the
    /// aggregate group producing it.
    pub fn covers(&self, col: ColId, producer: impl Fn(ColId) -> Option<GroupId>) -> bool {
        match col {
            ColId::Base { inst, .. } => self.leaves.contains(&Leaf::Instance(inst)),
            ColId::Synth(_) => producer(col)
                .map(|g| self.leaves.contains(&Leaf::Agg(g)))
                .unwrap_or(false),
        }
    }
}

/// Total selectivity of a normalized predicate, under attribute
/// independence: product of per-column constraint selectivities times
/// `1/max(V(a), V(b))` per equi-join atom.
pub fn predicate_selectivity(pred: &Predicate, ctx: &DagContext) -> f64 {
    let mut sel = 1.0;
    for (col, c) in &pred.constraints {
        sel *= c.selectivity(&ctx.col_stats(*col));
    }
    for &(a, b) in &pred.equi {
        let va = ctx.col_stats(a).distinct;
        let vb = ctx.col_stats(b).distinct;
        sel *= 1.0 / va.max(vb).max(1.0);
    }
    sel
}

/// Computes the properties of a non-aggregate operator applied to resolved
/// child properties. `leaf_rows` resolves an aggregate leaf group to its
/// cardinality.
pub fn compute_props(
    op: &LogicalOp,
    children: &[&LogicalProps],
    ctx: &DagContext,
    leaf_rows: impl Fn(GroupId) -> f64,
    leaf_width: impl Fn(GroupId) -> u32,
) -> LogicalProps {
    match op {
        LogicalOp::Scan(inst) => {
            let table = ctx.catalog().table(ctx.rel(*inst).table);
            LogicalProps {
                leaves: vec![Leaf::Instance(*inst)],
                applied: Predicate::none(),
                rows: table.rows,
                width: table.tuple_width(),
            }
        }
        LogicalOp::Select(p) => {
            let child = children[0];
            let applied = child.applied.and(p);
            spj_props(child.leaves.clone(), applied, ctx, leaf_rows, leaf_width)
        }
        LogicalOp::Join(p) => {
            let (l, r) = (children[0], children[1]);
            let mut leaves = l.leaves.clone();
            leaves.extend_from_slice(&r.leaves);
            leaves.sort_unstable();
            let applied = l.applied.and(&r.applied).and(p);
            spj_props(leaves, applied, ctx, leaf_rows, leaf_width)
        }
        LogicalOp::Aggregate(spec) => {
            let child = children[0];
            let rows = aggregate_rows(spec, child.rows, ctx);
            let width = aggregate_width(spec, ctx);
            // The leaf entry (Agg(self)) is patched in by the memo once the
            // group id is known.
            LogicalProps {
                leaves: Vec::new(),
                applied: Predicate::none(),
                rows,
                width,
            }
        }
        LogicalOp::Root => LogicalProps {
            leaves: Vec::new(),
            applied: Predicate::none(),
            rows: 0.0,
            width: 0,
        },
    }
}

/// Properties of an SPJ region from its leaf multiset and the normalized
/// applied predicate: `rows = Π leaf rows × Π atom selectivities`.
fn spj_props(
    leaves: Vec<Leaf>,
    applied: Predicate,
    ctx: &DagContext,
    leaf_rows: impl Fn(GroupId) -> f64,
    leaf_width: impl Fn(GroupId) -> u32,
) -> LogicalProps {
    let mut rows = 1.0;
    let mut width = 0u32;
    for leaf in &leaves {
        match leaf {
            Leaf::Instance(i) => {
                let table = ctx.catalog().table(ctx.rel(*i).table);
                rows *= table.rows;
                width += table.tuple_width();
            }
            Leaf::Agg(g) => {
                rows *= leaf_rows(*g);
                width += leaf_width(*g);
            }
        }
    }
    rows *= predicate_selectivity(&applied, ctx);
    LogicalProps {
        leaves,
        applied,
        rows,
        width,
    }
}

/// Cardinality of an aggregation: `min(input, Π_g min(V(g), input))`; 1 for
/// scalar aggregates.
fn aggregate_rows(spec: &AggSpec, input_rows: f64, ctx: &DagContext) -> f64 {
    if spec.is_scalar() {
        return 1.0;
    }
    let mut groups = 1.0f64;
    for g in &spec.group_by {
        groups *= ctx.col_stats(*g).distinct.min(input_rows.max(1.0));
        groups = groups.min(input_rows.max(1.0));
    }
    groups.min(input_rows.max(1.0))
}

/// Output width of an aggregation: group columns plus aggregate outputs.
fn aggregate_width(spec: &AggSpec, ctx: &DagContext) -> u32 {
    spec.group_by.iter().map(|c| ctx.col_width(*c)).sum::<u32>()
        + spec
            .aggs
            .iter()
            .map(|a| ctx.col_width(a.output))
            .sum::<u32>()
}

/// A logical plan tree, built by workload code and inserted into the memo.
#[derive(Clone, Debug)]
pub enum PlanNode {
    Scan {
        inst: InstanceId,
    },
    Select {
        pred: Predicate,
        input: Box<PlanNode>,
    },
    Join {
        pred: Predicate,
        left: Box<PlanNode>,
        right: Box<PlanNode>,
    },
    Aggregate {
        spec: AggSpec,
        input: Box<PlanNode>,
    },
}

impl PlanNode {
    /// Leaf scan.
    pub fn scan(inst: InstanceId) -> Self {
        PlanNode::Scan { inst }
    }

    /// Wraps `self` in a selection (no-op for trivial predicates).
    pub fn select(self, pred: Predicate) -> Self {
        if pred.is_trivial() {
            return self;
        }
        PlanNode::Select {
            pred,
            input: Box::new(self),
        }
    }

    /// Joins `self` with `other`.
    pub fn join(self, other: PlanNode, pred: Predicate) -> Self {
        PlanNode::Join {
            pred,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// Aggregates `self`.
    pub fn aggregate(self, spec: AggSpec) -> Self {
        PlanNode::Aggregate {
            spec,
            input: Box::new(self),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Constraint;
    use mqo_catalog::{Catalog, TableBuilder};

    fn ctx() -> DagContext {
        let mut cat = Catalog::new();
        cat.add_table(
            TableBuilder::new("r", 1000.0)
                .key_column("r_key", 4)
                .column("r_a", 10.0, (0, 9), 4)
                .primary_key(&["r_key"])
                .build(),
        );
        cat.add_table(
            TableBuilder::new("s", 500.0)
                .key_column("s_key", 4)
                .column("s_rkey", 1000.0, (0, 999), 4)
                .primary_key(&["s_key"])
                .build(),
        );
        DagContext::new(cat)
    }

    #[test]
    fn scan_props() {
        let mut ctx = ctx();
        let r = ctx.instance_by_name("r", 0);
        let p = compute_props(&LogicalOp::Scan(r), &[], &ctx, |_| 0.0, |_| 0);
        assert_eq!(p.rows, 1000.0);
        assert_eq!(p.width, 8);
        assert_eq!(p.leaves, vec![Leaf::Instance(r)]);
    }

    #[test]
    fn select_props_multiply_selectivity() {
        let mut ctx = ctx();
        let r = ctx.instance_by_name("r", 0);
        let scan = compute_props(&LogicalOp::Scan(r), &[], &ctx, |_| 0.0, |_| 0);
        let pred = Predicate::on(ctx.col(r, "r_a"), Constraint::eq(3));
        let sel = compute_props(&LogicalOp::Select(pred), &[&scan], &ctx, |_| 0.0, |_| 0);
        assert!((sel.rows - 100.0).abs() < 1e-9);
    }

    #[test]
    fn nested_selects_agree_with_direct() {
        // σ_{a=3}(σ_{a∈{3,5}}(R)) must estimate like σ_{a=3}(R): the applied
        // predicate normalizes identically.
        let mut ctx = ctx();
        let r = ctx.instance_by_name("r", 0);
        let a = ctx.col(r, "r_a");
        let scan = compute_props(&LogicalOp::Scan(r), &[], &ctx, |_| 0.0, |_| 0);
        let wide = compute_props(
            &LogicalOp::Select(Predicate::on(a, Constraint::in_list(vec![3, 5]))),
            &[&scan],
            &ctx,
            |_| 0.0,
            |_| 0,
        );
        let narrow_via_wide = compute_props(
            &LogicalOp::Select(Predicate::on(a, Constraint::eq(3))),
            &[&wide],
            &ctx,
            |_| 0.0,
            |_| 0,
        );
        let narrow_direct = compute_props(
            &LogicalOp::Select(Predicate::on(a, Constraint::eq(3))),
            &[&scan],
            &ctx,
            |_| 0.0,
            |_| 0,
        );
        assert!((narrow_via_wide.rows - narrow_direct.rows).abs() < 1e-9);
        assert_eq!(narrow_via_wide.applied, narrow_direct.applied);
    }

    #[test]
    fn join_props_use_fk_selectivity() {
        let mut ctx = ctx();
        let r = ctx.instance_by_name("r", 0);
        let s = ctx.instance_by_name("s", 0);
        let scan_r = compute_props(&LogicalOp::Scan(r), &[], &ctx, |_| 0.0, |_| 0);
        let scan_s = compute_props(&LogicalOp::Scan(s), &[], &ctx, |_| 0.0, |_| 0);
        let pred = Predicate::join(ctx.col(r, "r_key"), ctx.col(s, "s_rkey"));
        let join = compute_props(
            &LogicalOp::Join(pred),
            &[&scan_r, &scan_s],
            &ctx,
            |_| 0.0,
            |_| 0,
        );
        // 1000 * 500 / max(1000, 1000) = 500 (FK join keeps |S|).
        assert!((join.rows - 500.0).abs() < 1e-9);
        assert_eq!(join.width, 16);
        assert_eq!(join.leaves.len(), 2);
    }

    #[test]
    fn aggregate_rows_capped_by_input_and_distincts() {
        let mut ctx = ctx();
        let r = ctx.instance_by_name("r", 0);
        let a = ctx.col(r, "r_a");
        let out = ctx.add_synth("sum_x", mqo_catalog::ColumnStats::new(100.0, 0, 1_000), 8);
        let scan = compute_props(&LogicalOp::Scan(r), &[], &ctx, |_| 0.0, |_| 0);
        let spec = AggSpec::new(
            vec![a],
            vec![AggCall {
                func: AggFunc::Sum,
                input: a,
                output: out,
            }],
        );
        let agg = compute_props(&LogicalOp::Aggregate(spec), &[&scan], &ctx, |_| 0.0, |_| 0);
        assert_eq!(agg.rows, 10.0); // V(r_a) = 10
        assert_eq!(agg.width, 12); // 4 (group col) + 8 (sum output)

        let scalar = AggSpec::new(
            vec![],
            vec![AggCall {
                func: AggFunc::Count,
                input: a,
                output: out,
            }],
        );
        let sagg = compute_props(
            &LogicalOp::Aggregate(scalar),
            &[&scan],
            &ctx,
            |_| 0.0,
            |_| 0,
        );
        assert_eq!(sagg.rows, 1.0);
    }

    #[test]
    fn reaggregation_functions() {
        assert_eq!(AggFunc::Count.reaggregate(), Some(AggFunc::Sum));
        assert_eq!(AggFunc::Sum.reaggregate(), Some(AggFunc::Sum));
        assert_eq!(AggFunc::Avg.reaggregate(), None);
    }

    #[test]
    fn blocks_rounding() {
        let p = LogicalProps {
            leaves: vec![],
            applied: Predicate::none(),
            rows: 10.0,
            width: 100,
        };
        assert_eq!(p.blocks(4096), 1.0);
        let big = LogicalProps {
            rows: 1000.0,
            ..p.clone()
        };
        assert_eq!(big.blocks(4096), 25.0);
    }
}
