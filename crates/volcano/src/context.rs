//! The DAG context: table instances and synthetic columns shared by every
//! query in a batch.
//!
//! Cross-query common-subexpression detection requires consistent naming:
//! the *k*-th occurrence of a table within any query maps to the same
//! [`InstanceId`] across the whole batch, so `scan(lineitem)` in Q3 and in
//! Q10 is literally the same equivalence node. Self-joins use distinct
//! occurrence numbers (`nation` as `n1`/`n2` in TPCD Q7 are occurrences 0
//! and 1).
//!
//! Aggregate outputs are *synthetic columns* registered here with their own
//! statistics; two queries that reference the same aggregate subexpression
//! share the synthetic column ids (the workload builders guarantee this, in
//! the same way Pyro's DAG builder unifies identical subexpressions).

use std::collections::HashMap;

use mqo_catalog::{Catalog, ColumnStats, TableId};

/// Identifies a table instance (table, occurrence) within a batch DAG.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstanceId(pub u32);

/// A column reference usable in predicates: either a column of a table
/// instance or a synthetic (aggregate-output) column.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ColId {
    /// Column `col` of table instance `inst`.
    Base { inst: InstanceId, col: u32 },
    /// A synthetic column registered in the [`DagContext`].
    Synth(u32),
}

impl ColId {
    /// Convenience constructor for synthetic columns.
    pub fn synth(i: u32) -> Self {
        ColId::Synth(i)
    }
}

/// A registered table instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RelInstance {
    pub table: TableId,
    pub occurrence: u32,
}

/// A synthetic column (aggregate output).
#[derive(Clone, Debug)]
pub struct SynthCol {
    /// Human-readable name for plan printing.
    pub name: String,
    /// Statistics for selectivity estimation on this column.
    pub stats: ColumnStats,
    /// Width in bytes.
    pub width: u32,
}

/// Shared context for a batch of queries: catalog, table instances, and
/// synthetic columns.
#[derive(Debug)]
pub struct DagContext {
    catalog: Catalog,
    instances: Vec<RelInstance>,
    by_key: HashMap<(TableId, u32), InstanceId>,
    synths: Vec<SynthCol>,
}

impl DagContext {
    /// Creates a context over a catalog.
    pub fn new(catalog: Catalog) -> Self {
        DagContext {
            catalog,
            instances: Vec::new(),
            by_key: HashMap::new(),
            synths: Vec::new(),
        }
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Registers (or reuses) the instance `(table, occurrence)`.
    pub fn instance(&mut self, table: TableId, occurrence: u32) -> InstanceId {
        if let Some(&id) = self.by_key.get(&(table, occurrence)) {
            return id;
        }
        let id = InstanceId(self.instances.len() as u32);
        assert!(
            self.instances.len() < 64,
            "at most 64 table instances per batch DAG"
        );
        self.instances.push(RelInstance { table, occurrence });
        self.by_key.insert((table, occurrence), id);
        id
    }

    /// Registers instance 0 of a table looked up by name.
    pub fn instance_by_name(&mut self, table: &str, occurrence: u32) -> InstanceId {
        let id = self
            .catalog
            .table_id(table)
            .unwrap_or_else(|| panic!("unknown table {table:?}"));
        self.instance(id, occurrence)
    }

    /// The instance metadata.
    pub fn rel(&self, inst: InstanceId) -> RelInstance {
        self.instances[inst.0 as usize]
    }

    /// Number of registered instances.
    pub fn n_instances(&self) -> usize {
        self.instances.len()
    }

    /// Number of registered synthetic columns.
    pub fn n_synths(&self) -> usize {
        self.synths.len()
    }

    /// A `Base` column id resolved by table-instance and column name.
    pub fn col(&self, inst: InstanceId, name: &str) -> ColId {
        let table = self.catalog.table(self.rel(inst).table);
        let col = table
            .column_index(name)
            .unwrap_or_else(|| panic!("unknown column {name:?} of table {:?}", table.name));
        ColId::Base { inst, col }
    }

    /// Registers a synthetic column, returning its id.
    pub fn add_synth(&mut self, name: impl Into<String>, stats: ColumnStats, width: u32) -> ColId {
        let id = self.synths.len() as u32;
        self.synths.push(SynthCol {
            name: name.into(),
            stats,
            width,
        });
        ColId::Synth(id)
    }

    /// Statistics of any column.
    pub fn col_stats(&self, col: ColId) -> ColumnStats {
        match col {
            ColId::Base { inst, col } => {
                let rel = self.rel(inst);
                self.catalog.table(rel.table).columns[col as usize].stats
            }
            ColId::Synth(i) => self.synths[i as usize].stats,
        }
    }

    /// Width in bytes of any column.
    pub fn col_width(&self, col: ColId) -> u32 {
        match col {
            ColId::Base { inst, col } => {
                let rel = self.rel(inst);
                self.catalog.table(rel.table).columns[col as usize].width
            }
            ColId::Synth(i) => self.synths[i as usize].width,
        }
    }

    /// Human-readable column name (for plan printing).
    pub fn col_name(&self, col: ColId) -> String {
        match col {
            ColId::Base { inst, col } => {
                let rel = self.rel(inst);
                let table = self.catalog.table(rel.table);
                if rel.occurrence == 0 {
                    format!("{}.{}", table.name, table.columns[col as usize].name)
                } else {
                    format!(
                        "{}#{}.{}",
                        table.name, rel.occurrence, table.columns[col as usize].name
                    )
                }
            }
            ColId::Synth(i) => self.synths[i as usize].name.clone(),
        }
    }

    /// Human-readable instance name.
    pub fn instance_name(&self, inst: InstanceId) -> String {
        let rel = self.rel(inst);
        let table = self.catalog.table(rel.table);
        if rel.occurrence == 0 {
            table.name.clone()
        } else {
            format!("{}#{}", table.name, rel.occurrence)
        }
    }

    /// Whether `col` is the leading primary-key column of its instance's
    /// table (i.e. a clustered-index scan can apply a constraint on it).
    pub fn is_clustered_key(&self, col: ColId) -> bool {
        match col {
            ColId::Base { inst, col } => {
                let rel = self.rel(inst);
                self.catalog.table(rel.table).clustered_on(col)
            }
            ColId::Synth(_) => false,
        }
    }

    /// The sort order in which a clustered table instance is stored (its
    /// primary-key columns), if any.
    pub fn clustered_order(&self, inst: InstanceId) -> Vec<ColId> {
        let rel = self.rel(inst);
        self.catalog
            .table(rel.table)
            .primary_key
            .iter()
            .map(|&c| ColId::Base { inst, col: c })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqo_catalog::TableBuilder;

    fn ctx() -> DagContext {
        let mut cat = Catalog::new();
        cat.add_table(
            TableBuilder::new("nation", 25.0)
                .key_column("n_nationkey", 4)
                .column("n_name", 25.0, (0, 24), 25)
                .column("n_regionkey", 5.0, (0, 4), 4)
                .primary_key(&["n_nationkey"])
                .build(),
        );
        DagContext::new(cat)
    }

    #[test]
    fn instances_are_shared_per_occurrence() {
        let mut ctx = ctx();
        let a = ctx.instance_by_name("nation", 0);
        let b = ctx.instance_by_name("nation", 0);
        let c = ctx.instance_by_name("nation", 1);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(ctx.n_instances(), 2);
    }

    #[test]
    fn column_resolution_and_stats() {
        let mut ctx = ctx();
        let n = ctx.instance_by_name("nation", 0);
        let col = ctx.col(n, "n_regionkey");
        assert_eq!(ctx.col_stats(col).distinct, 5.0);
        assert_eq!(ctx.col_width(col), 4);
        assert_eq!(ctx.col_name(col), "nation.n_regionkey");
    }

    #[test]
    fn synthetic_columns() {
        let mut ctx = ctx();
        let c = ctx.add_synth("total_revenue", ColumnStats::new(10_000.0, 0, 1_000_000), 8);
        assert_eq!(ctx.col_stats(c).distinct, 10_000.0);
        assert_eq!(ctx.col_name(c), "total_revenue");
        assert!(!ctx.is_clustered_key(c));
    }

    #[test]
    fn clustered_key_detection_and_order() {
        let mut ctx = ctx();
        let n = ctx.instance_by_name("nation", 0);
        let key = ctx.col(n, "n_nationkey");
        let name = ctx.col(n, "n_name");
        assert!(ctx.is_clustered_key(key));
        assert!(!ctx.is_clustered_key(name));
        assert_eq!(ctx.clustered_order(n), vec![key]);
    }

    #[test]
    fn occurrence_names() {
        let mut ctx = ctx();
        let n0 = ctx.instance_by_name("nation", 0);
        let n1 = ctx.instance_by_name("nation", 1);
        assert_eq!(ctx.instance_name(n0), "nation");
        assert_eq!(ctx.instance_name(n1), "nation#1");
        assert_eq!(ctx.col_name(ctx.col(n1, "n_name")), "nation#1.n_name");
    }
}
