//! A Volcano/Cascades-style query-optimizer substrate.
//!
//! This crate provides everything the MQO layer (`mqo-core`) needs from a
//! transformation-based optimizer, reimplementing the substrate described in
//! Section 2 and Section 6 of *"Efficient and Provable Multi-Query
//! Optimization"*:
//!
//! * [`context`] — table instances and synthetic (aggregate-output) columns
//!   shared across a batch of queries.
//! * [`expr`] — normalized conjunctive predicates with selectivity
//!   estimation.
//! * [`logical`] — logical operators and group-consistent logical
//!   properties.
//! * [`memo`] — the hash-consed AND-OR DAG (LQDAG) with group merging.
//! * [`rules`] — transformation rules: join associativity (bushy, no cross
//!   products), select push-down & merge, select subsumption, aggregate
//!   subsumption.
//! * [`physical`] — physical operators and sort-order properties.
//! * [`cost`] — the cost-model trait, the paper's disk cost model (4 KB
//!   blocks, 6 MB per operator, 10 ms seek, 2/4 ms block read/write,
//!   0.2 ms/block CPU) and the unit model of Example 1.
//! * [`optimizer`] — the reference physical DP over
//!   `(group, required order)` with sort enforcers and a
//!   materialized-node overlay: this is `bestUseCost(Q, S)` from
//!   Section 2.4, kept as the test oracle for `mqo-core`'s compiled
//!   engine and arena-based plan extraction.
//! * [`plan`] — extracted physical plans with pretty-printing.
#![forbid(unsafe_code)]

pub mod context;
pub mod cost;
pub mod expr;
pub mod logical;
pub mod memo;
pub mod optimizer;
pub mod physical;
pub mod plan;
pub mod rules;

pub use context::{ColId, DagContext, InstanceId};
pub use expr::{Constraint, Predicate};
pub use logical::{AggCall, AggFunc, AggSpec, LogicalOp, PlanNode};
pub use memo::{ExprId, GroupId, Memo};
