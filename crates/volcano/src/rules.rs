//! Transformation rules and the frontier-driven fixpoint expansion engine.
//!
//! The rule set matches Section 6: "select push down, join commutativity
//! and associativity (to generate bushy join trees), and select and
//! aggregate subsumption". Commutativity is implicit (join children are
//! canonically ordered in the memo; physical joins consider both
//! orientations). Rules insert *logical* alternatives; where a rule knows
//! the result group, hash-consing either lands there or triggers a group
//! merge (unification).
//!
//! # The fixpoint
//!
//! Expansion proceeds in rounds over a *frontier* of expressions instead of
//! re-scanning the whole memo until quiescence. Each round:
//!
//! 1. **Generate** — every frontier expression is matched against the
//!    per-expression rules on a frozen `&Memo` snapshot, producing
//!    `Candidate` programs (small insert scripts) without mutating
//!    anything. This phase is embarrassingly parallel: with `threads > 1`
//!    the frontier is split into contiguous chunks and fanned out over
//!    `std::thread::scope` workers.
//! 2. **Commit** — a single thread replays the candidates in frontier
//!    order through [`Memo::insert`], which hash-conses, merges, and logs
//!    every change. The commit order is a pure function of the frontier,
//!    so the resulting memo is **bit-identical at every thread count**
//!    (pinned by `tests/memo_differential.rs`).
//! 3. **Subsume** — the pairwise rules (select/aggregate subsumption) run
//!    serially over the selects/aggregates that are new or were rewritten
//!    this round, pairing each against its current siblings (the other
//!    selects/aggregates over the same child group) instead of re-scanning
//!    every pair in the memo.
//!
//! The next round's frontier is derived from the memo's change log: newly
//! interned expressions, expressions whose children were rewritten by a
//! merge, and the live parents of every group that gained expressions
//! (their rules may now match the new members). Expansion terminates when
//! a round changes nothing.

use crate::context::ColId;
use crate::expr::Predicate;
use crate::logical::{AggCall, AggSpec, LogicalOp};
use crate::memo::{ExprId, GroupId, Memo};

/// Which rules to apply during expansion.
#[derive(Clone, Copy, Debug)]
pub struct RuleSet {
    /// Join associativity (generates the bushy space, no cross products).
    pub join_associativity: bool,
    /// Push selection atoms below joins.
    pub select_pushdown: bool,
    /// Collapse nested selections.
    pub select_merge: bool,
    /// Create disjunctive-subsumer nodes for sibling selections over the
    /// same input and derive each from the subsumer.
    pub select_subsumption: bool,
    /// Derive coarser aggregates from finer ones with decomposable
    /// functions.
    pub aggregate_subsumption: bool,
}

impl Default for RuleSet {
    fn default() -> Self {
        RuleSet {
            join_associativity: true,
            select_pushdown: true,
            select_merge: true,
            select_subsumption: true,
            aggregate_subsumption: true,
        }
    }
}

impl RuleSet {
    /// Only the rules needed for plain join-order optimization.
    pub fn joins_only() -> Self {
        RuleSet {
            join_associativity: true,
            select_pushdown: true,
            select_merge: true,
            select_subsumption: false,
            aggregate_subsumption: false,
        }
    }
}

/// Statistics of one expansion run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExpansionStats {
    /// Fixpoint rounds (frontier generations) until quiescence.
    pub passes: usize,
    /// Live expressions after expansion.
    pub exprs: usize,
    /// Live groups after expansion.
    pub groups: usize,
    /// Candidates generated across all rounds (commit replays each once).
    pub candidates: usize,
}

/// Hard cap on memo size; expansion aborts (panics) beyond this, which
/// indicates a runaway rule rather than a legitimate workload.
const MAX_EXPRS: usize = 500_000;

/// The `MQO_THREADS` environment convention shared by the whole
/// workspace: unset or unparsable means `1` (serial); `0` means
/// auto-detect. The parsing lives here so expansion and the `mqo-core`
/// oracle cannot drift apart, but the variable is *read* in exactly one
/// place — `mqo_core`'s `MqoConfig::default()`.
pub fn expand_threads_from_env() -> usize {
    std::env::var("MQO_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(1)
}

/// Resolves a thread request to a concrete worker count for `n_items`
/// work units (`0` = auto-detect, capped by the item count). Shared by the
/// expansion fixpoint and `mqo-core`'s sharded oracle, so the
/// `MQO_THREADS` conventions cannot drift apart.
pub fn effective_threads(threads: usize, n_items: usize) -> usize {
    let t = match threads {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        t => t,
    };
    t.clamp(1, n_items.max(1))
}

/// Expands the memo to fixpoint under `rules` with serial candidate
/// generation. The resulting memo is bit-identical to any parallel
/// [`expand_with`] run; callers wanting the fan-out (e.g. `mqo-core`'s
/// `Session`) pass an explicit thread count instead of an environment
/// read.
pub fn expand(memo: &mut Memo, rules: &RuleSet) -> ExpansionStats {
    expand_with(memo, rules, 1)
}

/// Expands the memo to fixpoint under `rules` with an explicit worker
/// count for the candidate-generation phase. The resulting memo is
/// bit-identical at every `threads` value; only the wall-clock changes.
pub fn expand_with(memo: &mut Memo, rules: &RuleSet, threads: usize) -> ExpansionStats {
    // Round 1 processes every live expression; later rounds only what the
    // change log implicates.
    let frontier: Vec<ExprId> = memo.expr_ids().collect();
    expand_frontier(memo, rules, threads, frontier)
}

/// Expands the memo to fixpoint under `rules`, seeding the first round
/// with `seeds` instead of every live expression. This is the incremental
/// entry point for batch evolution: after `insert_plan` of a new query
/// into an already-expanded memo, only the freshly interned expressions
/// need processing — expansion is idempotent over the old ones, and any
/// merge a seed triggers pulls the implicated old expressions into later
/// rounds through the change log (while pairwise subsumption pairs new
/// selects/aggregates against *all* their live siblings).
///
/// Dead or out-of-range seeds are ignored.
pub fn expand_seeded(
    memo: &mut Memo,
    rules: &RuleSet,
    threads: usize,
    seeds: impl IntoIterator<Item = ExprId>,
) -> ExpansionStats {
    let n = memo.exprs_allocated() as u32;
    let mut frontier: Vec<ExprId> = seeds
        .into_iter()
        .filter(|e| e.0 < n && memo.is_alive(*e))
        .collect();
    frontier.sort_unstable();
    frontier.dedup();
    expand_frontier(memo, rules, threads, frontier)
}

/// The shared fixpoint loop behind [`expand_with`] and [`expand_seeded`];
/// `frontier` is the (sorted, deduplicated, live) round-1 work list.
fn expand_frontier(
    memo: &mut Memo,
    rules: &RuleSet,
    threads: usize,
    mut frontier: Vec<ExprId>,
) -> ExpansionStats {
    let mut stats = ExpansionStats::default();
    // Per-frontier-entry candidate buffers, reused across rounds.
    let mut candidates: Vec<Vec<Candidate>> = Vec::new();

    while !frontier.is_empty() {
        stats.passes += 1;
        let watermark = memo.exprs_allocated();

        // Phase 1: generate (read-only, parallel).
        generate_all(memo, rules, &frontier, threads, &mut candidates);
        stats.candidates += candidates.iter().map(Vec::len).sum::<usize>();

        // Phase 2: commit (serial, deterministic order).
        memo.log_start();
        for slot in candidates.iter_mut() {
            for cand in slot.drain(..) {
                commit(memo, cand);
            }
            assert!(
                memo.exprs_allocated() <= MAX_EXPRS,
                "memo exploded past {MAX_EXPRS} expressions; runaway rule?"
            );
        }

        // Phase 3: pairwise subsumption over this round's new/rewritten
        // selects and aggregates (plus, in round 1, the initial ones).
        if rules.select_subsumption || rules.aggregate_subsumption {
            let pair_frontier = pair_frontier(memo, &frontier, watermark);
            for &e in &pair_frontier {
                if !memo.is_alive(e) {
                    continue;
                }
                match memo.op(e) {
                    LogicalOp::Select(_) if rules.select_subsumption => {
                        subsume_selects_of(memo, e, &pair_frontier);
                    }
                    LogicalOp::Aggregate(_) if rules.aggregate_subsumption => {
                        subsume_aggregates_of(memo, e, &pair_frontier);
                    }
                    _ => {}
                }
            }
            assert!(
                memo.exprs_allocated() <= MAX_EXPRS,
                "memo exploded past {MAX_EXPRS} expressions; runaway rule?"
            );
        }

        // Next frontier from the change log: new expressions, rewritten
        // expressions, and live parents of every group that gained members.
        frontier.clear();
        frontier.extend((watermark as u32..memo.exprs_allocated() as u32).map(ExprId));
        frontier.extend_from_slice(memo.log_rewritten());
        for &g in memo.log_grown() {
            frontier.extend(memo.group_parents(g));
        }
        memo.log_stop();
        frontier.sort_unstable();
        frontier.dedup();
        frontier.retain(|&e| memo.is_alive(e));
    }

    stats.exprs = memo.n_exprs();
    stats.groups = memo.n_groups();
    stats
}

/// The subsumption frontier of a round: the per-expression frontier plus
/// everything interned or rewritten during this round's commit, sorted and
/// deduplicated.
fn pair_frontier(memo: &Memo, frontier: &[ExprId], watermark: usize) -> Vec<ExprId> {
    let mut out: Vec<ExprId> = frontier.to_vec();
    out.extend((watermark as u32..memo.exprs_allocated() as u32).map(ExprId));
    out.extend_from_slice(memo.log_rewritten());
    out.sort_unstable();
    out.dedup();
    out
}

// ---------------------------------------------------------------------------
// Candidates: rule applications generated against a frozen snapshot and
// replayed by the serial commit phase.
// ---------------------------------------------------------------------------

/// A child of a candidate step: an existing group, or the group produced by
/// an earlier step of the same candidate.
#[derive(Clone, Copy, Debug)]
enum ChildRef {
    Group(GroupId),
    Step(u8),
}

/// One [`Memo::insert`] call of a candidate program.
#[derive(Debug)]
struct Step {
    op: LogicalOp,
    children: Vec<ChildRef>,
    target: Option<GroupId>,
}

/// A rule application: a guard (pairs that must still be distinct groups at
/// commit time — merges committed earlier in the round can invalidate a
/// pivot) followed by insert steps.
#[derive(Debug)]
struct Candidate {
    guards: Vec<(GroupId, GroupId)>,
    steps: Vec<Step>,
}

/// Replays a candidate against the live memo.
fn commit(memo: &mut Memo, cand: Candidate) {
    for &(a, b) in &cand.guards {
        if memo.find(a) == memo.find(b) {
            return;
        }
    }
    let mut results: Vec<GroupId> = Vec::with_capacity(cand.steps.len());
    for step in cand.steps {
        let children: Vec<GroupId> = step
            .children
            .iter()
            .map(|r| match *r {
                ChildRef::Group(g) => g,
                ChildRef::Step(i) => results[i as usize],
            })
            .collect();
        let g = memo.insert(step.op, children, step.target);
        results.push(g);
    }
}

/// Generates candidates for every frontier expression. With `threads > 1`
/// the frontier is split into contiguous chunks processed by scoped worker
/// threads; output slots are indexed by frontier position, so the result —
/// and therefore the commit order — is independent of the fan-out.
fn generate_all(
    memo: &Memo,
    rules: &RuleSet,
    frontier: &[ExprId],
    threads: usize,
    out: &mut Vec<Vec<Candidate>>,
) {
    if out.len() < frontier.len() {
        out.resize_with(frontier.len(), Vec::new);
    }
    let workers = effective_threads(threads, frontier.len());
    if workers <= 1 {
        for (slot, &e) in out.iter_mut().zip(frontier.iter()) {
            generate(memo, rules, e, slot);
        }
        return;
    }
    let chunk = frontier.len().div_ceil(workers);
    std::thread::scope(|scope| {
        for (items, slots) in frontier.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (&e, slot) in items.iter().zip(slots.iter_mut()) {
                    generate(memo, rules, e, slot);
                }
            });
        }
    });
}

/// Matches one expression against the per-expression rules.
fn generate(memo: &Memo, rules: &RuleSet, e: ExprId, out: &mut Vec<Candidate>) {
    if !memo.is_alive(e) {
        return;
    }
    match memo.op(e) {
        LogicalOp::Join(_) if rules.join_associativity => {
            gen_associativity(memo, e, out);
        }
        LogicalOp::Select(_) => {
            if rules.select_pushdown {
                gen_select_pushdown(memo, e, out);
            }
            if rules.select_merge {
                gen_select_merge(memo, e, out);
            }
        }
        _ => {}
    }
}

/// Join associativity: for `(A ⋈ B) ⋈ C` in a group, derive `A ⋈ (B ⋈ C)`
/// into the same group (and the mirrored variant). Predicate atoms are
/// pooled and redistributed by column coverage; rewrites that would create a
/// predicate-less (cross-product) join are skipped.
fn gen_associativity(memo: &Memo, e: ExprId, out: &mut Vec<Candidate>) {
    let LogicalOp::Join(top_pred) = memo.op(e) else {
        return;
    };
    let ch = memo.children(e);
    let (l, r) = (ch[0], ch[1]);
    let target = memo.group_of(e);

    // Direction 1: left child is itself a join (A ⋈ B), pivot to A ⋈ (B ⋈ C).
    for le in memo.group_exprs(l) {
        if let LogicalOp::Join(low_pred) = memo.op(le) {
            let lc = memo.children(le);
            let (a, b) = (lc[0], lc[1]);
            gen_pivot(memo, target, top_pred, low_pred, a, b, r, out);
            // Commutativity of the lower join: also pivot keeping B.
            gen_pivot(memo, target, top_pred, low_pred, b, a, r, out);
        }
    }

    // Direction 2 (mirror): right child is a join (B ⋈ C), pivot to
    // (A ⋈ B) ⋈ C.
    for re in memo.group_exprs(r) {
        if let LogicalOp::Join(low_pred) = memo.op(re) {
            let rc = memo.children(re);
            let (b, c) = (rc[0], rc[1]);
            // A ⋈ (B ⋈ C)  →  (A ⋈ B) ⋈ C, i.e. pivot with "kept" side c.
            gen_pivot(memo, target, top_pred, low_pred, c, b, l, out);
            gen_pivot(memo, target, top_pred, low_pred, b, c, l, out);
        }
    }
}

/// Emits `kept ⋈ (other ⋈ outer)` inside `target`, redistributing the atoms
/// of `top ∧ low` between the new lower join and the new top join.
#[allow(clippy::too_many_arguments)]
fn gen_pivot(
    memo: &Memo,
    target: GroupId,
    top_pred: &Predicate,
    low_pred: &Predicate,
    kept: GroupId,
    other: GroupId,
    outer: GroupId,
    out: &mut Vec<Candidate>,
) {
    if memo.find(other) == memo.find(outer) || memo.find(kept) == memo.find(outer) {
        // Degenerate pivot (shared view on both sides); skip.
        return;
    }
    let pool = top_pred.and(low_pred);
    let mut lower = Predicate::none();
    let mut upper = Predicate::none();
    let covered_by_lower =
        |memo: &Memo, col: ColId| memo.group_covers(other, col) || memo.group_covers(outer, col);
    for (col, c) in &pool.constraints {
        if covered_by_lower(memo, *col) {
            lower.add_constraint(*col, c.clone());
        } else {
            upper.add_constraint(*col, c.clone());
        }
    }
    for &(x, y) in &pool.equi {
        if covered_by_lower(memo, x) && covered_by_lower(memo, y) {
            lower.add_equi(x, y);
        } else {
            upper.add_equi(x, y);
        }
    }
    // No cross products: the new lower join must be connected by at least
    // one equi atom, and so must the new top.
    if lower.equi.is_empty() || upper.equi.is_empty() {
        return;
    }
    // The commit replays: insert the lower join, then the upper join into
    // `target` (Memo::insert refuses the upper step if the lower group has
    // become `target` itself — the old "would nest the target inside
    // itself" guard). The distinctness guards re-check the degeneracy
    // conditions at commit time, since merges earlier in the round may
    // have unified the snapshot's groups.
    out.push(Candidate {
        guards: vec![(other, outer), (kept, outer)],
        steps: vec![
            Step {
                op: LogicalOp::Join(lower),
                children: vec![ChildRef::Group(other), ChildRef::Group(outer)],
                target: None,
            },
            Step {
                op: LogicalOp::Join(upper),
                children: vec![ChildRef::Group(kept), ChildRef::Step(0)],
                target: Some(target),
            },
        ],
    });
}

/// Select push-down: `σ_p(A ⋈_j B)` derives `σ_pA(A) ⋈_{j ∧ p_rest} σ_pB(B)`
/// in the same group.
fn gen_select_pushdown(memo: &Memo, e: ExprId, out: &mut Vec<Candidate>) {
    let LogicalOp::Select(pred) = memo.op(e) else {
        return;
    };
    let child = memo.children(e)[0];
    let target = memo.group_of(e);
    for je in memo.group_exprs(child) {
        let LogicalOp::Join(jp) = memo.op(je) else {
            continue;
        };
        let jc = memo.children(je);
        let (l, r) = (jc[0], jc[1]);
        let mut pl = Predicate::none();
        let mut pr = Predicate::none();
        let mut rest = jp.clone();
        for (col, c) in &pred.constraints {
            if memo.group_covers(l, *col) {
                pl.add_constraint(*col, c.clone());
            } else if memo.group_covers(r, *col) {
                pr.add_constraint(*col, c.clone());
            } else {
                rest.add_constraint(*col, c.clone());
            }
        }
        for &(x, y) in &pred.equi {
            if memo.group_covers(l, x) && memo.group_covers(l, y) {
                pl.add_equi(x, y);
            } else if memo.group_covers(r, x) && memo.group_covers(r, y) {
                pr.add_equi(x, y);
            } else {
                rest.add_equi(x, y);
            }
        }
        if pl.is_trivial() && pr.is_trivial() {
            continue;
        }
        let mut steps = Vec::with_capacity(3);
        let new_l = if pl.is_trivial() {
            ChildRef::Group(l)
        } else {
            steps.push(Step {
                op: LogicalOp::Select(pl),
                children: vec![ChildRef::Group(l)],
                target: None,
            });
            ChildRef::Step(steps.len() as u8 - 1)
        };
        let new_r = if pr.is_trivial() {
            ChildRef::Group(r)
        } else {
            steps.push(Step {
                op: LogicalOp::Select(pr),
                children: vec![ChildRef::Group(r)],
                target: None,
            });
            ChildRef::Step(steps.len() as u8 - 1)
        };
        steps.push(Step {
            op: LogicalOp::Join(rest),
            children: vec![new_l, new_r],
            target: Some(target),
        });
        out.push(Candidate {
            guards: Vec::new(),
            steps,
        });
    }
}

/// Select merge: `σ_p(σ_q(E))` derives `σ_{p∧q}(E)` in the same group.
fn gen_select_merge(memo: &Memo, e: ExprId, out: &mut Vec<Candidate>) {
    let LogicalOp::Select(pred) = memo.op(e) else {
        return;
    };
    let child = memo.children(e)[0];
    let target = memo.group_of(e);
    for se in memo.group_exprs(child) {
        let LogicalOp::Select(q) = memo.op(se) else {
            continue;
        };
        let grandchild = memo.children(se)[0];
        out.push(Candidate {
            guards: Vec::new(),
            steps: vec![Step {
                op: LogicalOp::Select(pred.and(q)),
                children: vec![ChildRef::Group(grandchild)],
                target: Some(target),
            }],
        });
    }
}

// ---------------------------------------------------------------------------
// Pairwise subsumption rules (serial; frontier-driven via sibling lookup).
// ---------------------------------------------------------------------------

/// Select subsumption: pairs the frontier select `e` against every sibling
/// selection over the same input group. For each pair, either derive the
/// tighter from the looser (when one implies the other) or build the
/// disjunctive subsumer `σ_{p1 ⊔ p2}(E)` and derive both from it
/// (Section 6's "select subsumption"; this is how the batched workload's
/// repeated queries with different constants share work).
fn subsume_selects_of(memo: &mut Memo, e: ExprId, pair_frontier: &[ExprId]) {
    let child = memo.find(memo.children(e)[0]);
    // A sibling that is itself in the (sorted, ascending-processed) pair
    // frontier with a smaller id already evaluated this pair at its own
    // turn — the pair logic is symmetric, so re-running it here would
    // only repeat the same implication/subsumer work.
    let siblings: Vec<ExprId> = memo
        .group_parents(child)
        .into_iter()
        .filter(|&f| {
            f != e
                && !(f < e && pair_frontier.binary_search(&f).is_ok())
                && matches!(memo.op(f), LogicalOp::Select(_))
                && memo.children(f)[0] == child
        })
        .collect();
    for f in siblings {
        if !memo.is_alive(e) {
            // A previous pair's merge can tombstone the frontier expr.
            return;
        }
        if !memo.is_alive(f) {
            continue;
        }
        subsume_select_pair(memo, child, e, f);
    }
}

/// The pairwise select-subsumption body for sibling selects `e1`, `e2`
/// over `child`.
fn subsume_select_pair(memo: &mut Memo, child: GroupId, e1: ExprId, e2: ExprId) {
    let g1 = memo.group_of(e1);
    let g2 = memo.group_of(e2);
    if g1 == g2 {
        return;
    }
    let (LogicalOp::Select(p1), LogicalOp::Select(p2)) = (memo.op(e1), memo.op(e2)) else {
        return;
    };
    let (p1, p2) = (p1.clone(), p2.clone());
    if p1.implies(&p2) {
        // σ_{p1} derivable by filtering σ_{p2}'s result.
        let residual = p1.residual_after(&p2);
        if !residual.is_trivial() {
            memo.insert(LogicalOp::Select(residual), vec![g2], Some(g1));
        }
        return;
    }
    if p2.implies(&p1) {
        let residual = p2.residual_after(&p1);
        if !residual.is_trivial() {
            memo.insert(LogicalOp::Select(residual), vec![g1], Some(g2));
        }
        return;
    }
    // Disjunctive subsumer: only when the two predicates constrain the
    // same columns with the same equi atoms and differ on exactly one
    // column (the "different selection constants" pattern).
    if let Some(subsumer) = disjunctive_subsumer(&p1, &p2) {
        if memo.props(child).applied.implies(&subsumer) {
            // The child group already satisfies the subsumer predicate:
            // the child *is* the subsumer, and the direct derivations
            // already exist. Creating σ_subsumer(child) would add a no-op
            // layer (and, through later merges, self-referencing nodes).
            return;
        }
        let gs = memo.insert(LogicalOp::Select(subsumer.clone()), vec![child], None);
        if memo.find(gs) == memo.find(child) {
            return;
        }
        let r1 = p1.residual_after(&subsumer);
        let r2 = p2.residual_after(&subsumer);
        let g1 = memo.group_of(e1);
        let g2 = memo.group_of(e2);
        if !r1.is_trivial() && memo.find(gs) != g1 {
            memo.insert(LogicalOp::Select(r1), vec![gs], Some(g1));
        }
        if !r2.is_trivial() && memo.find(gs) != g2 {
            memo.insert(LogicalOp::Select(r2), vec![gs], Some(g2));
        }
    }
}

/// The disjunctive subsumer of two predicates, if they have identical equi
/// atoms, the same constrained column set, and differ on at most `2`
/// columns (hulls widen estimates, so subsumption is kept tight).
fn disjunctive_subsumer(p1: &Predicate, p2: &Predicate) -> Option<Predicate> {
    if p1.equi != p2.equi {
        return None;
    }
    let cols1: Vec<ColId> = p1.constraints.keys().copied().collect();
    let cols2: Vec<ColId> = p2.constraints.keys().copied().collect();
    if cols1 != cols2 || cols1.is_empty() {
        return None;
    }
    let mut out = Predicate::none();
    let mut differing = 0;
    for col in cols1 {
        let c1 = &p1.constraints[&col];
        let c2 = &p2.constraints[&col];
        if c1 == c2 {
            out.add_constraint(col, c1.clone());
        } else {
            differing += 1;
            out.add_constraint(col, c1.hull(c2));
        }
    }
    for &(a, b) in &p1.equi {
        out.add_equi(a, b);
    }
    if differing == 0 || differing > 2 {
        return None;
    }
    Some(out)
}

/// Aggregate subsumption: pairs the frontier aggregate `e` against every
/// sibling aggregation over the same input group, trying both derivation
/// directions: `γ_{G1,F1}(E)` derivable by re-aggregating `γ_{G2,F2}(E)`
/// when `G1 ⊆ G2` and every call in `F1` appears in `F2` with a
/// decomposable function.
fn subsume_aggregates_of(memo: &mut Memo, e: ExprId, pair_frontier: &[ExprId]) {
    let child = memo.find(memo.children(e)[0]);
    // Same pair-dedup as the select phase: a smaller-id sibling in the
    // frontier already tried both derivation directions for this pair.
    let siblings: Vec<ExprId> = memo
        .group_parents(child)
        .into_iter()
        .filter(|&f| {
            f != e
                && !(f < e && pair_frontier.binary_search(&f).is_ok())
                && matches!(memo.op(f), LogicalOp::Aggregate(_))
                && memo.children(f)[0] == child
        })
        .collect();
    for f in siblings {
        if !memo.is_alive(e) {
            return;
        }
        if !memo.is_alive(f) {
            continue;
        }
        try_reaggregate(memo, e, f);
        if !memo.is_alive(e) || !memo.is_alive(f) {
            continue;
        }
        try_reaggregate(memo, f, e);
    }
}

/// Tries to derive the coarse aggregate `coarse_e` by re-aggregating the
/// fine aggregate `fine_e`.
fn try_reaggregate(memo: &mut Memo, coarse_e: ExprId, fine_e: ExprId) {
    if memo.group_of(coarse_e) == memo.group_of(fine_e) {
        return;
    }
    let (LogicalOp::Aggregate(coarse), LogicalOp::Aggregate(fine)) =
        (memo.op(coarse_e), memo.op(fine_e))
    else {
        return;
    };
    if !coarse.group_by.iter().all(|g| fine.group_by.contains(g)) {
        return;
    }
    if coarse.group_by == fine.group_by {
        return;
    }
    let derived: Option<Vec<AggCall>> = coarse
        .aggs
        .iter()
        .map(|call| {
            let fine_call = fine
                .aggs
                .iter()
                .find(|fc| fc.func == call.func && fc.input == call.input)?;
            let func = call.func.reaggregate()?;
            Some(AggCall {
                func,
                input: fine_call.output,
                output: call.output,
            })
        })
        .collect();
    let Some(derived) = derived else { return };
    let spec = AggSpec::new(coarse.group_by.clone(), derived);
    let fine_group = memo.group_of(fine_e);
    let coarse_group = memo.group_of(coarse_e);
    memo.insert(
        LogicalOp::Aggregate(spec),
        vec![fine_group],
        Some(coarse_group),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::DagContext;
    use crate::expr::Constraint;
    use crate::logical::{AggFunc, PlanNode};
    use mqo_catalog::{Catalog, ColumnStats, TableBuilder};

    fn chain_ctx() -> DagContext {
        let mut cat = Catalog::new();
        for (name, rows) in [("a", 1000.0), ("b", 2000.0), ("c", 500.0), ("d", 300.0)] {
            cat.add_table(
                TableBuilder::new(name, rows)
                    .key_column(format!("{name}_key"), 4)
                    .column(format!("{name}_next"), rows, (0, rows as i64 - 1), 4)
                    .column(format!("{name}_x"), 10.0, (0, 9), 4)
                    .primary_key(&[&format!("{name}_key")])
                    .build(),
            );
        }
        DagContext::new(cat)
    }

    /// Builds the left-deep chain ((a⋈b)⋈c) with join atoms a_next=b_key,
    /// b_next=c_key.
    fn chain3(ctx: &mut DagContext) -> PlanNode {
        let a = ctx.instance_by_name("a", 0);
        let b = ctx.instance_by_name("b", 0);
        let c = ctx.instance_by_name("c", 0);
        let p_ab = Predicate::join(ctx.col(a, "a_next"), ctx.col(b, "b_key"));
        let p_bc = Predicate::join(ctx.col(b, "b_next"), ctx.col(c, "c_key"));
        PlanNode::scan(a)
            .join(PlanNode::scan(b), p_ab)
            .join(PlanNode::scan(c), p_bc)
    }

    #[test]
    fn associativity_generates_alternatives() {
        let mut ctx = chain_ctx();
        let q = chain3(&mut ctx);
        let mut memo = Memo::new(ctx);
        let root = memo.insert_plan(&q);
        let before = memo.group_exprs(root).count();
        expand(&mut memo, &RuleSet::joins_only());
        let after = memo.group_exprs(root).count();
        assert!(after > before, "expected new join orders in the root group");
        // Chain of 3 without cross products: root should now contain both
        // (a⋈b)⋈c and a⋈(b⋈c).
        assert_eq!(after, 2);
        memo.check_consistency();
    }

    #[test]
    fn two_queries_unify_via_associativity() {
        // Q1 = (a⋈b)⋈c built left-deep; Q2 = a⋈(b⋈c) built right-deep. After
        // expansion both roots must be the same group (Example 1's premise).
        let mut ctx = chain_ctx();
        let a = ctx.instance_by_name("a", 0);
        let b = ctx.instance_by_name("b", 0);
        let c = ctx.instance_by_name("c", 0);
        let p_ab = Predicate::join(ctx.col(a, "a_next"), ctx.col(b, "b_key"));
        let p_bc = Predicate::join(ctx.col(b, "b_next"), ctx.col(c, "c_key"));
        let q1 = PlanNode::scan(a)
            .join(PlanNode::scan(b), p_ab.clone())
            .join(PlanNode::scan(c), p_bc.clone());
        let q2 = PlanNode::scan(a).join(PlanNode::scan(b).join(PlanNode::scan(c), p_bc), p_ab);
        let mut memo = Memo::new(ctx);
        let r1 = memo.insert_plan(&q1);
        let r2 = memo.insert_plan(&q2);
        assert_ne!(memo.find(r1), memo.find(r2));
        expand(&mut memo, &RuleSet::joins_only());
        assert_eq!(memo.find(r1), memo.find(r2), "roots must unify");
        memo.check_consistency();
    }

    #[test]
    fn no_cross_products_generated() {
        let mut ctx = chain_ctx();
        let q = chain3(&mut ctx);
        let mut memo = Memo::new(ctx);
        memo.insert_plan(&q);
        expand(&mut memo, &RuleSet::joins_only());
        for e in memo.expr_ids() {
            if let LogicalOp::Join(p) = memo.op(e) {
                assert!(
                    !p.equi.is_empty(),
                    "cross-product join generated: {:?}",
                    memo.expr(e)
                );
            }
        }
    }

    #[test]
    fn select_pushdown_creates_pushed_variant() {
        let mut ctx = chain_ctx();
        let a = ctx.instance_by_name("a", 0);
        let b = ctx.instance_by_name("b", 0);
        let p_ab = Predicate::join(ctx.col(a, "a_next"), ctx.col(b, "b_key"));
        let sel = Predicate::on(ctx.col(a, "a_x"), Constraint::eq(3));
        let q = PlanNode::scan(a)
            .join(PlanNode::scan(b), p_ab)
            .select(sel.clone());
        let mut memo = Memo::new(ctx);
        let root = memo.insert_plan(&q);
        expand(&mut memo, &RuleSet::joins_only());
        // Root group must now contain a Join expr (the pushed-down form).
        let has_join = memo
            .group_exprs(root)
            .any(|e| matches!(memo.op(e), LogicalOp::Join(_)));
        assert!(has_join, "pushdown should add a join-rooted alternative");
        // And σ_{a_x=3}(a) must exist somewhere.
        let has_pushed = memo.expr_ids().any(|e| {
            matches!(memo.op(e), LogicalOp::Select(p) if p == &sel
                && memo.group_children(memo.group_of(e)).len() == 1)
        });
        assert!(has_pushed);
    }

    #[test]
    fn select_merge_collapses_nested() {
        let mut ctx = chain_ctx();
        let a = ctx.instance_by_name("a", 0);
        let ax = ctx.col(a, "a_x");
        let akey = ctx.col(a, "a_key");
        let q = PlanNode::scan(a)
            .select(Predicate::on(ax, Constraint::eq(3)))
            .select(Predicate::on(akey, Constraint::le(100)));
        let mut memo = Memo::new(ctx);
        let root = memo.insert_plan(&q);
        expand(&mut memo, &RuleSet::joins_only());
        // The root group must contain a single-select form over the scan.
        let has_merged = memo.group_exprs(root).any(|e| {
            if let LogicalOp::Select(p) = memo.op(e) {
                p.constraints.len() == 2
            } else {
                false
            }
        });
        assert!(has_merged);
    }

    #[test]
    fn select_subsumption_on_equality_constants() {
        // σ_{x=3}(a) and σ_{x=5}(a): expect subsumer σ_{x∈{3,5}}(a) plus
        // derivations.
        let mut ctx = chain_ctx();
        let a = ctx.instance_by_name("a", 0);
        let ax = ctx.col(a, "a_x");
        let q1 = PlanNode::scan(a).select(Predicate::on(ax, Constraint::eq(3)));
        let q2 = PlanNode::scan(a).select(Predicate::on(ax, Constraint::eq(5)));
        let mut memo = Memo::new(ctx);
        let g1 = memo.insert_plan(&q1);
        let _g2 = memo.insert_plan(&q2);
        expand(&mut memo, &RuleSet::default());
        let subsumer_pred = Predicate::on(ax, Constraint::in_list(vec![3, 5]));
        let subsumer = memo.expr_ids().find_map(|e| match memo.op(e) {
            LogicalOp::Select(p) if *p == subsumer_pred => Some(memo.group_of(e)),
            _ => None,
        });
        let subsumer = subsumer.expect("subsumer node must exist");
        // g1 must now have an expr reading from the subsumer group.
        let derives = memo.group_exprs(g1).any(|e| {
            memo.children(e)
                .iter()
                .any(|&c| memo.find(c) == memo.find(subsumer))
        });
        assert!(derives, "σ_(x=3) must be derivable from the subsumer");
    }

    #[test]
    fn select_subsumption_via_implication() {
        // σ_{key<=100}(a) is derivable from σ_{key<=200}(a) directly.
        let mut ctx = chain_ctx();
        let a = ctx.instance_by_name("a", 0);
        let ak = ctx.col(a, "a_key");
        let tight = PlanNode::scan(a).select(Predicate::on(ak, Constraint::le(100)));
        let loose = PlanNode::scan(a).select(Predicate::on(ak, Constraint::le(200)));
        let mut memo = Memo::new(ctx);
        let gt = memo.insert_plan(&tight);
        let gl = memo.insert_plan(&loose);
        expand(&mut memo, &RuleSet::default());
        let derives = memo.group_exprs(gt).any(|e| {
            memo.children(e)
                .iter()
                .any(|&c| memo.find(c) == memo.find(gl))
        });
        assert!(derives, "tight select must be derivable from the loose one");
    }

    #[test]
    fn aggregate_subsumption_derives_coarse_from_fine() {
        let mut ctx = chain_ctx();
        let a = ctx.instance_by_name("a", 0);
        let ax = ctx.col(a, "a_x");
        let akey = ctx.col(a, "a_key");
        let s_fine = ctx.add_synth("sum_fine", ColumnStats::new(500.0, 0, 100_000), 8);
        let s_coarse = ctx.add_synth("sum_coarse", ColumnStats::new(10.0, 0, 100_000), 8);
        let fine = PlanNode::scan(a).aggregate(AggSpec::new(
            vec![ax, akey],
            vec![AggCall {
                func: AggFunc::Sum,
                input: akey,
                output: s_fine,
            }],
        ));
        let coarse = PlanNode::scan(a).aggregate(AggSpec::new(
            vec![ax],
            vec![AggCall {
                func: AggFunc::Sum,
                input: akey,
                output: s_coarse,
            }],
        ));
        let mut memo = Memo::new(ctx);
        let gf = memo.insert_plan(&fine);
        let gc = memo.insert_plan(&coarse);
        expand(&mut memo, &RuleSet::default());
        let derives = memo.group_exprs(gc).any(|e| {
            memo.children(e)
                .iter()
                .any(|&c| memo.find(c) == memo.find(gf))
        });
        assert!(derives, "coarse aggregate must re-aggregate the fine one");
    }

    #[test]
    fn expansion_is_idempotent() {
        let mut ctx = chain_ctx();
        let q = chain3(&mut ctx);
        let mut memo = Memo::new(ctx);
        memo.insert_plan(&q);
        let s1 = expand(&mut memo, &RuleSet::default());
        let s2 = expand(&mut memo, &RuleSet::default());
        assert_eq!(s1.exprs, s2.exprs);
        assert_eq!(s1.groups, s2.groups);
        assert_eq!(s2.passes, 1);
    }

    /// Inserting a second query into an already-expanded memo and running
    /// the fixpoint seeded with only the new expressions must land on the
    /// same live expression/group counts as expanding both queries from
    /// scratch — including the cross-query subsumers between the old and
    /// new selects.
    #[test]
    fn seeded_expansion_matches_batch_expansion() {
        let selected_chain = |ctx: &mut DagContext, c: i64| {
            let a = ctx.instance_by_name("a", 0);
            let b = ctx.instance_by_name("b", 0);
            let cc = ctx.instance_by_name("c", 0);
            let p_ab = Predicate::join(ctx.col(a, "a_next"), ctx.col(b, "b_key"));
            let p_bc = Predicate::join(ctx.col(b, "b_next"), ctx.col(cc, "c_key"));
            let ax = ctx.col(a, "a_x");
            PlanNode::scan(a)
                .select(Predicate::on(ax, Constraint::eq(c)))
                .join(PlanNode::scan(b), p_ab)
                .join(PlanNode::scan(cc), p_bc)
        };
        let rules = RuleSet::default();

        let mut ctx = chain_ctx();
        let q1 = selected_chain(&mut ctx, 3);
        let q2 = selected_chain(&mut ctx, 1);
        let mut fresh = Memo::new(ctx);
        fresh.insert_plan(&q1);
        fresh.insert_plan(&q2);
        expand_with(&mut fresh, &rules, 1);

        let mut ctx = chain_ctx();
        let q1 = selected_chain(&mut ctx, 3);
        let q2 = selected_chain(&mut ctx, 1);
        let mut evolved = Memo::new(ctx);
        evolved.insert_plan(&q1);
        expand_with(&mut evolved, &rules, 1);
        let watermark = evolved.exprs_allocated() as u32;
        evolved.insert_plan(&q2);
        let seeds = (watermark..evolved.exprs_allocated() as u32).map(ExprId);
        expand_seeded(&mut evolved, &rules, 1, seeds);
        evolved.check_consistency();

        assert_eq!(fresh.n_exprs(), evolved.n_exprs());
        assert_eq!(fresh.n_groups(), evolved.n_groups());
        // And the seeded fixpoint actually converged: re-expanding in full
        // changes nothing.
        let s = expand_with(&mut evolved, &rules, 1);
        assert_eq!(s.passes, 1);
        assert_eq!(s.exprs, evolved.n_exprs());
    }

    #[test]
    fn four_way_chain_generates_bushy_space() {
        let mut ctx = chain_ctx();
        let a = ctx.instance_by_name("a", 0);
        let b = ctx.instance_by_name("b", 0);
        let c = ctx.instance_by_name("c", 0);
        let d = ctx.instance_by_name("d", 0);
        let p_ab = Predicate::join(ctx.col(a, "a_next"), ctx.col(b, "b_key"));
        let p_bc = Predicate::join(ctx.col(b, "b_next"), ctx.col(c, "c_key"));
        let p_cd = Predicate::join(ctx.col(c, "c_next"), ctx.col(d, "d_key"));
        let q = PlanNode::scan(a)
            .join(PlanNode::scan(b), p_ab)
            .join(PlanNode::scan(c), p_bc)
            .join(PlanNode::scan(d), p_cd);
        let mut memo = Memo::new(ctx);
        let root = memo.insert_plan(&q);
        expand(&mut memo, &RuleSet::joins_only());
        // Chain a-b-c-d: connected subsets {ab, bc, cd, abc, bcd, abcd} plus
        // 4 scans = 10 groups.
        assert_eq!(memo.n_groups(), 10);
        // Root group exprs are joins of *group pairs*: ABC⋈D, AB⋈CD, A⋈BCD.
        assert_eq!(memo.group_exprs(root).count(), 3);
        // The 3-subchain groups each hold both shapes, giving the full
        // bushy space of 5 plan shapes overall.
        let abc = memo
            .group_children(root)
            .into_iter()
            .find(|&g| {
                memo.props(g).leaves.len() == 3
                    && memo.group_exprs(g).count() > 0
                    && memo
                        .group_exprs(g)
                        .all(|e| !matches!(memo.op(e), LogicalOp::Scan(_)))
            })
            .expect("3-way subchain group");
        assert_eq!(memo.group_exprs(abc).count(), 2);
    }

    #[test]
    fn expand_with_threads_matches_serial() {
        // Smoke-level determinism check (the full differential suite lives
        // in tests/memo_differential.rs): the memo after parallel
        // generation is identical to the serial one.
        for rules in [RuleSet::default(), RuleSet::joins_only()] {
            let mut ctx1 = chain_ctx();
            let q1 = chain3(&mut ctx1);
            let mut serial = Memo::new(ctx1);
            serial.insert_plan(&q1);
            let s1 = expand_with(&mut serial, &rules, 1);

            let mut ctx2 = chain_ctx();
            let q2 = chain3(&mut ctx2);
            let mut parallel = Memo::new(ctx2);
            parallel.insert_plan(&q2);
            let s2 = expand_with(&mut parallel, &rules, 4);

            assert_eq!(s1.exprs, s2.exprs);
            assert_eq!(s1.groups, s2.groups);
            assert_eq!(s1.passes, s2.passes);
            assert_eq!(s1.candidates, s2.candidates);
            assert_eq!(serial.exprs_allocated(), parallel.exprs_allocated());
            assert_eq!(serial.topo_view(), parallel.topo_view());
        }
    }
}
