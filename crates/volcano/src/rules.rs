//! Transformation rules and the fixpoint expansion engine.
//!
//! The rule set matches Section 6: "select push down, join commutativity
//! and associativity (to generate bushy join trees), and select and
//! aggregate subsumption". Commutativity is implicit (join children are
//! canonically ordered in the memo; physical joins consider both
//! orientations). Rules insert *logical* alternatives; where a rule knows
//! the result group, hash-consing either lands there or triggers a group
//! merge (unification).

use crate::context::ColId;
use crate::expr::Predicate;
use crate::logical::{AggCall, AggSpec, LogicalOp};
use crate::memo::{ExprId, GroupId, Memo};

/// Which rules to apply during expansion.
#[derive(Clone, Copy, Debug)]
pub struct RuleSet {
    /// Join associativity (generates the bushy space, no cross products).
    pub join_associativity: bool,
    /// Push selection atoms below joins.
    pub select_pushdown: bool,
    /// Collapse nested selections.
    pub select_merge: bool,
    /// Create disjunctive-subsumer nodes for sibling selections over the
    /// same input and derive each from the subsumer.
    pub select_subsumption: bool,
    /// Derive coarser aggregates from finer ones with decomposable
    /// functions.
    pub aggregate_subsumption: bool,
}

impl Default for RuleSet {
    fn default() -> Self {
        RuleSet {
            join_associativity: true,
            select_pushdown: true,
            select_merge: true,
            select_subsumption: true,
            aggregate_subsumption: true,
        }
    }
}

impl RuleSet {
    /// Only the rules needed for plain join-order optimization.
    pub fn joins_only() -> Self {
        RuleSet {
            join_associativity: true,
            select_pushdown: true,
            select_merge: true,
            select_subsumption: false,
            aggregate_subsumption: false,
        }
    }
}

/// Statistics of one expansion run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExpansionStats {
    /// Full passes over the expression list until fixpoint.
    pub passes: usize,
    /// Live expressions after expansion.
    pub exprs: usize,
    /// Live groups after expansion.
    pub groups: usize,
}

/// Hard cap on memo size; expansion aborts (panics) beyond this, which
/// indicates a runaway rule rather than a legitimate workload.
const MAX_EXPRS: usize = 500_000;

/// Expands the memo to fixpoint under `rules`.
pub fn expand(memo: &mut Memo, rules: &RuleSet) -> ExpansionStats {
    let mut stats = ExpansionStats::default();
    loop {
        stats.passes += 1;
        let before = memo.exprs_allocated();

        // Per-expression rules; iterating by index picks up insertions made
        // during the pass.
        let mut i = 0u32;
        while (i as usize) < memo.exprs_allocated() {
            let e = ExprId(i);
            i += 1;
            if !memo.is_alive(e) {
                continue;
            }
            if rules.join_associativity {
                apply_associativity(memo, e);
            }
            if rules.select_pushdown {
                apply_select_pushdown(memo, e);
            }
            if rules.select_merge {
                apply_select_merge(memo, e);
            }
        }

        // Pairwise rules (subsumption) need a stable snapshot per pass.
        if rules.select_subsumption {
            apply_select_subsumption(memo);
        }
        if rules.aggregate_subsumption {
            apply_aggregate_subsumption(memo);
        }

        assert!(
            memo.exprs_allocated() <= MAX_EXPRS,
            "memo exploded past {MAX_EXPRS} expressions; runaway rule?"
        );
        if memo.exprs_allocated() == before {
            break;
        }
    }
    stats.exprs = memo.n_exprs();
    stats.groups = memo.n_groups();
    stats
}

/// Join associativity: for `(A ⋈ B) ⋈ C` in a group, derive `A ⋈ (B ⋈ C)`
/// into the same group (and the mirrored variant). Predicate atoms are
/// pooled and redistributed by column coverage; rewrites that would create a
/// predicate-less (cross-product) join are skipped.
fn apply_associativity(memo: &mut Memo, e: ExprId) {
    let (top_pred, l, r) = match &memo.expr(e).op {
        LogicalOp::Join(p) => {
            let ch = &memo.expr(e).children;
            (p.clone(), ch[0], ch[1])
        }
        _ => return,
    };
    let target = memo.group_of(e);

    // Direction 1: left child is itself a join (A ⋈ B), pivot to A ⋈ (B ⋈ C).
    let left_joins: Vec<(Predicate, GroupId, GroupId)> = memo
        .group_exprs(l)
        .filter_map(|le| match &memo.expr(le).op {
            LogicalOp::Join(p) => {
                let ch = &memo.expr(le).children;
                Some((p.clone(), ch[0], ch[1]))
            }
            _ => None,
        })
        .collect();
    for (low_pred, a, b) in left_joins {
        pivot(memo, target, &top_pred, &low_pred, a, b, r);
        // Commutativity of the lower join: also pivot keeping B.
        pivot(memo, target, &top_pred, &low_pred, b, a, r);
    }

    // Direction 2 (mirror): right child is a join (B ⋈ C), pivot to
    // (A ⋈ B) ⋈ C.
    let right_joins: Vec<(Predicate, GroupId, GroupId)> = memo
        .group_exprs(r)
        .filter_map(|re| match &memo.expr(re).op {
            LogicalOp::Join(p) => {
                let ch = &memo.expr(re).children;
                Some((p.clone(), ch[0], ch[1]))
            }
            _ => None,
        })
        .collect();
    for (low_pred, b, c) in right_joins {
        // A ⋈ (B ⋈ C)  →  (A ⋈ B) ⋈ C, i.e. pivot with "kept" side c.
        pivot(memo, target, &top_pred, &low_pred, c, b, l);
        pivot(memo, target, &top_pred, &low_pred, b, c, l);
    }
}

/// Builds `kept ⋈ (other ⋈ outer)` inside `target`, redistributing the atoms
/// of `top ∧ low` between the new lower join and the new top join.
fn pivot(
    memo: &mut Memo,
    target: GroupId,
    top_pred: &Predicate,
    low_pred: &Predicate,
    kept: GroupId,
    other: GroupId,
    outer: GroupId,
) {
    if memo.find(other) == memo.find(outer) || memo.find(kept) == memo.find(outer) {
        // Degenerate pivot (shared view on both sides); skip.
        return;
    }
    let pool = top_pred.and(low_pred);
    let mut lower = Predicate::none();
    let mut upper = Predicate::none();
    let covered_by_lower =
        |memo: &Memo, col: ColId| memo.group_covers(other, col) || memo.group_covers(outer, col);
    for (col, c) in &pool.constraints {
        if covered_by_lower(memo, *col) {
            lower.add_constraint(*col, c.clone());
        } else {
            upper.add_constraint(*col, c.clone());
        }
    }
    for &(x, y) in &pool.equi {
        if covered_by_lower(memo, x) && covered_by_lower(memo, y) {
            lower.add_equi(x, y);
        } else {
            upper.add_equi(x, y);
        }
    }
    // No cross products: the new lower join must be connected by at least
    // one equi atom, and so must the new top.
    if lower.equi.is_empty() || upper.equi.is_empty() {
        return;
    }
    let lower_group = memo.insert(LogicalOp::Join(lower), vec![other, outer], None);
    if memo.find(lower_group) == memo.find(target) {
        // Would nest the target inside itself (can happen with shared-view
        // self joins); skip.
        return;
    }
    memo.insert(
        LogicalOp::Join(upper),
        vec![kept, lower_group],
        Some(target),
    );
}

/// Select push-down: `σ_p(A ⋈_j B)` derives `σ_pA(A) ⋈_{j ∧ p_rest} σ_pB(B)`
/// in the same group.
fn apply_select_pushdown(memo: &mut Memo, e: ExprId) {
    let (pred, child) = match &memo.expr(e).op {
        LogicalOp::Select(p) => (p.clone(), memo.expr(e).children[0]),
        _ => return,
    };
    let target = memo.group_of(e);
    let joins: Vec<(Predicate, GroupId, GroupId)> = memo
        .group_exprs(child)
        .filter_map(|je| match &memo.expr(je).op {
            LogicalOp::Join(p) => {
                let ch = &memo.expr(je).children;
                Some((p.clone(), ch[0], ch[1]))
            }
            _ => None,
        })
        .collect();
    for (jp, l, r) in joins {
        let mut pl = Predicate::none();
        let mut pr = Predicate::none();
        let mut rest = jp.clone();
        for (col, c) in &pred.constraints {
            if memo.group_covers(l, *col) {
                pl.add_constraint(*col, c.clone());
            } else if memo.group_covers(r, *col) {
                pr.add_constraint(*col, c.clone());
            } else {
                rest.add_constraint(*col, c.clone());
            }
        }
        for &(x, y) in &pred.equi {
            if memo.group_covers(l, x) && memo.group_covers(l, y) {
                pl.add_equi(x, y);
            } else if memo.group_covers(r, x) && memo.group_covers(r, y) {
                pr.add_equi(x, y);
            } else {
                rest.add_equi(x, y);
            }
        }
        if pl.is_trivial() && pr.is_trivial() {
            continue;
        }
        let new_l = if pl.is_trivial() {
            l
        } else {
            memo.insert(LogicalOp::Select(pl), vec![l], None)
        };
        let new_r = if pr.is_trivial() {
            r
        } else {
            memo.insert(LogicalOp::Select(pr), vec![r], None)
        };
        memo.insert(LogicalOp::Join(rest), vec![new_l, new_r], Some(target));
    }
}

/// Select merge: `σ_p(σ_q(E))` derives `σ_{p∧q}(E)` in the same group.
fn apply_select_merge(memo: &mut Memo, e: ExprId) {
    let (pred, child) = match &memo.expr(e).op {
        LogicalOp::Select(p) => (p.clone(), memo.expr(e).children[0]),
        _ => return,
    };
    let target = memo.group_of(e);
    let inner: Vec<(Predicate, GroupId)> = memo
        .group_exprs(child)
        .filter_map(|se| match &memo.expr(se).op {
            LogicalOp::Select(q) => Some((q.clone(), memo.expr(se).children[0])),
            _ => None,
        })
        .collect();
    for (q, grandchild) in inner {
        memo.insert(
            LogicalOp::Select(pred.and(&q)),
            vec![grandchild],
            Some(target),
        );
    }
}

/// Select subsumption: for sibling selections `σ_{p1}(E)`, `σ_{p2}(E)` over
/// the same input, either derive the tighter from the looser (when one
/// implies the other) or build the disjunctive subsumer `σ_{p1 ⊔ p2}(E)` and
/// derive both from it (Section 6's "select subsumption"; this is how the
/// batched workload's repeated queries with different constants share work).
fn apply_select_subsumption(memo: &mut Memo) {
    // Snapshot: all live selects grouped by child group.
    let mut by_child: std::collections::HashMap<GroupId, Vec<(ExprId, Predicate)>> =
        std::collections::HashMap::new();
    for e in memo.expr_ids().collect::<Vec<_>>() {
        if let LogicalOp::Select(p) = &memo.expr(e).op {
            let child = memo.find(memo.expr(e).children[0]);
            by_child.entry(child).or_default().push((e, p.clone()));
        }
    }
    for (child, sels) in by_child {
        for i in 0..sels.len() {
            for j in (i + 1)..sels.len() {
                let (e1, p1) = &sels[i];
                let (e2, p2) = &sels[j];
                let g1 = memo.group_of(*e1);
                let g2 = memo.group_of(*e2);
                if g1 == g2 {
                    continue;
                }
                if p1.implies(p2) {
                    // σ_{p1} derivable by filtering σ_{p2}'s result.
                    let residual = p1.residual_after(p2);
                    if !residual.is_trivial() {
                        memo.insert(LogicalOp::Select(residual), vec![g2], Some(g1));
                    }
                    continue;
                }
                if p2.implies(p1) {
                    let residual = p2.residual_after(p1);
                    if !residual.is_trivial() {
                        memo.insert(LogicalOp::Select(residual), vec![g1], Some(g2));
                    }
                    continue;
                }
                // Disjunctive subsumer: only when the two predicates
                // constrain the same columns with the same equi atoms and
                // differ on exactly one column (the "different selection
                // constants" pattern).
                if let Some(subsumer) = disjunctive_subsumer(p1, p2) {
                    if memo.props(child).applied.implies(&subsumer) {
                        // The child group already satisfies the subsumer
                        // predicate: the child *is* the subsumer, and the
                        // direct derivations already exist. Creating
                        // σ_subsumer(child) would add a no-op layer (and,
                        // through later merges, self-referencing nodes).
                        continue;
                    }
                    let gs = memo.insert(LogicalOp::Select(subsumer.clone()), vec![child], None);
                    if memo.find(gs) == memo.find(child) {
                        continue;
                    }
                    let r1 = p1.residual_after(&subsumer);
                    let r2 = p2.residual_after(&subsumer);
                    let g1 = memo.group_of(*e1);
                    let g2 = memo.group_of(*e2);
                    if !r1.is_trivial() && memo.find(gs) != g1 {
                        memo.insert(LogicalOp::Select(r1), vec![gs], Some(g1));
                    }
                    if !r2.is_trivial() && memo.find(gs) != g2 {
                        memo.insert(LogicalOp::Select(r2), vec![gs], Some(g2));
                    }
                }
            }
        }
    }
}

/// The disjunctive subsumer of two predicates, if they have identical equi
/// atoms, the same constrained column set, and differ on at most `2`
/// columns (hulls widen estimates, so subsumption is kept tight).
fn disjunctive_subsumer(p1: &Predicate, p2: &Predicate) -> Option<Predicate> {
    if p1.equi != p2.equi {
        return None;
    }
    let cols1: Vec<ColId> = p1.constraints.keys().copied().collect();
    let cols2: Vec<ColId> = p2.constraints.keys().copied().collect();
    if cols1 != cols2 || cols1.is_empty() {
        return None;
    }
    let mut out = Predicate::none();
    let mut differing = 0;
    for col in cols1 {
        let c1 = &p1.constraints[&col];
        let c2 = &p2.constraints[&col];
        if c1 == c2 {
            out.add_constraint(col, c1.clone());
        } else {
            differing += 1;
            out.add_constraint(col, c1.hull(c2));
        }
    }
    for &(a, b) in &p1.equi {
        out.add_equi(a, b);
    }
    if differing == 0 || differing > 2 {
        return None;
    }
    Some(out)
}

/// Aggregate subsumption: `γ_{G1,F1}(E)` derivable by re-aggregating
/// `γ_{G2,F2}(E)` when `G1 ⊆ G2` and every call in `F1` appears in `F2`
/// with a decomposable function.
fn apply_aggregate_subsumption(memo: &mut Memo) {
    let mut by_child: std::collections::HashMap<GroupId, Vec<(ExprId, AggSpec)>> =
        std::collections::HashMap::new();
    for e in memo.expr_ids().collect::<Vec<_>>() {
        if let LogicalOp::Aggregate(spec) = &memo.expr(e).op {
            let child = memo.find(memo.expr(e).children[0]);
            by_child.entry(child).or_default().push((e, spec.clone()));
        }
    }
    for (_, aggs) in by_child {
        for i in 0..aggs.len() {
            for j in 0..aggs.len() {
                if i == j {
                    continue;
                }
                let (coarse_e, coarse) = &aggs[i];
                let (fine_e, fine) = &aggs[j];
                if memo.group_of(*coarse_e) == memo.group_of(*fine_e) {
                    continue;
                }
                if !coarse.group_by.iter().all(|g| fine.group_by.contains(g)) {
                    continue;
                }
                if coarse.group_by == fine.group_by {
                    continue;
                }
                let derived: Option<Vec<AggCall>> = coarse
                    .aggs
                    .iter()
                    .map(|call| {
                        let fine_call = fine
                            .aggs
                            .iter()
                            .find(|fc| fc.func == call.func && fc.input == call.input)?;
                        let func = call.func.reaggregate()?;
                        Some(AggCall {
                            func,
                            input: fine_call.output,
                            output: call.output,
                        })
                    })
                    .collect();
                let Some(derived) = derived else { continue };
                let fine_group = memo.group_of(*fine_e);
                let coarse_group = memo.group_of(*coarse_e);
                memo.insert(
                    LogicalOp::Aggregate(AggSpec::new(coarse.group_by.clone(), derived)),
                    vec![fine_group],
                    Some(coarse_group),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::DagContext;
    use crate::expr::Constraint;
    use crate::logical::{AggFunc, PlanNode};
    use mqo_catalog::{Catalog, ColumnStats, TableBuilder};

    fn chain_ctx() -> DagContext {
        let mut cat = Catalog::new();
        for (name, rows) in [("a", 1000.0), ("b", 2000.0), ("c", 500.0), ("d", 300.0)] {
            cat.add_table(
                TableBuilder::new(name, rows)
                    .key_column(format!("{name}_key"), 4)
                    .column(format!("{name}_next"), rows, (0, rows as i64 - 1), 4)
                    .column(format!("{name}_x"), 10.0, (0, 9), 4)
                    .primary_key(&[&format!("{name}_key")])
                    .build(),
            );
        }
        DagContext::new(cat)
    }

    /// Builds the left-deep chain ((a⋈b)⋈c) with join atoms a_next=b_key,
    /// b_next=c_key.
    fn chain3(ctx: &mut DagContext) -> PlanNode {
        let a = ctx.instance_by_name("a", 0);
        let b = ctx.instance_by_name("b", 0);
        let c = ctx.instance_by_name("c", 0);
        let p_ab = Predicate::join(ctx.col(a, "a_next"), ctx.col(b, "b_key"));
        let p_bc = Predicate::join(ctx.col(b, "b_next"), ctx.col(c, "c_key"));
        PlanNode::scan(a)
            .join(PlanNode::scan(b), p_ab)
            .join(PlanNode::scan(c), p_bc)
    }

    #[test]
    fn associativity_generates_alternatives() {
        let mut ctx = chain_ctx();
        let q = chain3(&mut ctx);
        let mut memo = Memo::new(ctx);
        let root = memo.insert_plan(&q);
        let before = memo.group_exprs(root).count();
        expand(&mut memo, &RuleSet::joins_only());
        let after = memo.group_exprs(root).count();
        assert!(after > before, "expected new join orders in the root group");
        // Chain of 3 without cross products: root should now contain both
        // (a⋈b)⋈c and a⋈(b⋈c).
        assert_eq!(after, 2);
    }

    #[test]
    fn two_queries_unify_via_associativity() {
        // Q1 = (a⋈b)⋈c built left-deep; Q2 = a⋈(b⋈c) built right-deep. After
        // expansion both roots must be the same group (Example 1's premise).
        let mut ctx = chain_ctx();
        let a = ctx.instance_by_name("a", 0);
        let b = ctx.instance_by_name("b", 0);
        let c = ctx.instance_by_name("c", 0);
        let p_ab = Predicate::join(ctx.col(a, "a_next"), ctx.col(b, "b_key"));
        let p_bc = Predicate::join(ctx.col(b, "b_next"), ctx.col(c, "c_key"));
        let q1 = PlanNode::scan(a)
            .join(PlanNode::scan(b), p_ab.clone())
            .join(PlanNode::scan(c), p_bc.clone());
        let q2 = PlanNode::scan(a).join(PlanNode::scan(b).join(PlanNode::scan(c), p_bc), p_ab);
        let mut memo = Memo::new(ctx);
        let r1 = memo.insert_plan(&q1);
        let r2 = memo.insert_plan(&q2);
        assert_ne!(memo.find(r1), memo.find(r2));
        expand(&mut memo, &RuleSet::joins_only());
        assert_eq!(memo.find(r1), memo.find(r2), "roots must unify");
    }

    #[test]
    fn no_cross_products_generated() {
        let mut ctx = chain_ctx();
        let q = chain3(&mut ctx);
        let mut memo = Memo::new(ctx);
        memo.insert_plan(&q);
        expand(&mut memo, &RuleSet::joins_only());
        for e in memo.expr_ids() {
            if let LogicalOp::Join(p) = &memo.expr(e).op {
                assert!(
                    !p.equi.is_empty(),
                    "cross-product join generated: {:?}",
                    memo.expr(e)
                );
            }
        }
    }

    #[test]
    fn select_pushdown_creates_pushed_variant() {
        let mut ctx = chain_ctx();
        let a = ctx.instance_by_name("a", 0);
        let b = ctx.instance_by_name("b", 0);
        let p_ab = Predicate::join(ctx.col(a, "a_next"), ctx.col(b, "b_key"));
        let sel = Predicate::on(ctx.col(a, "a_x"), Constraint::eq(3));
        let q = PlanNode::scan(a)
            .join(PlanNode::scan(b), p_ab)
            .select(sel.clone());
        let mut memo = Memo::new(ctx);
        let root = memo.insert_plan(&q);
        expand(&mut memo, &RuleSet::joins_only());
        // Root group must now contain a Join expr (the pushed-down form).
        let has_join = memo
            .group_exprs(root)
            .any(|e| matches!(memo.expr(e).op, LogicalOp::Join(_)));
        assert!(has_join, "pushdown should add a join-rooted alternative");
        // And σ_{a_x=3}(a) must exist somewhere.
        let has_pushed = memo.expr_ids().any(|e| {
            matches!(&memo.expr(e).op, LogicalOp::Select(p) if p == &sel
                && memo.group_children(memo.group_of(e)).len() == 1)
        });
        assert!(has_pushed);
    }

    #[test]
    fn select_merge_collapses_nested() {
        let mut ctx = chain_ctx();
        let a = ctx.instance_by_name("a", 0);
        let ax = ctx.col(a, "a_x");
        let akey = ctx.col(a, "a_key");
        let q = PlanNode::scan(a)
            .select(Predicate::on(ax, Constraint::eq(3)))
            .select(Predicate::on(akey, Constraint::le(100)));
        let mut memo = Memo::new(ctx);
        let root = memo.insert_plan(&q);
        expand(&mut memo, &RuleSet::joins_only());
        // The root group must contain a single-select form over the scan.
        let has_merged = memo.group_exprs(root).any(|e| {
            if let LogicalOp::Select(p) = &memo.expr(e).op {
                p.constraints.len() == 2
            } else {
                false
            }
        });
        assert!(has_merged);
    }

    #[test]
    fn select_subsumption_on_equality_constants() {
        // σ_{x=3}(a) and σ_{x=5}(a): expect subsumer σ_{x∈{3,5}}(a) plus
        // derivations.
        let mut ctx = chain_ctx();
        let a = ctx.instance_by_name("a", 0);
        let ax = ctx.col(a, "a_x");
        let q1 = PlanNode::scan(a).select(Predicate::on(ax, Constraint::eq(3)));
        let q2 = PlanNode::scan(a).select(Predicate::on(ax, Constraint::eq(5)));
        let mut memo = Memo::new(ctx);
        let g1 = memo.insert_plan(&q1);
        let _g2 = memo.insert_plan(&q2);
        expand(&mut memo, &RuleSet::default());
        let subsumer_pred = Predicate::on(ax, Constraint::in_list(vec![3, 5]));
        let subsumer = memo.expr_ids().find_map(|e| match &memo.expr(e).op {
            LogicalOp::Select(p) if *p == subsumer_pred => Some(memo.group_of(e)),
            _ => None,
        });
        let subsumer = subsumer.expect("subsumer node must exist");
        // g1 must now have an expr reading from the subsumer group.
        let derives = memo.group_exprs(g1).any(|e| {
            memo.expr(e)
                .children
                .iter()
                .any(|&c| memo.find(c) == memo.find(subsumer))
        });
        assert!(derives, "σ_(x=3) must be derivable from the subsumer");
    }

    #[test]
    fn select_subsumption_via_implication() {
        // σ_{key<=100}(a) is derivable from σ_{key<=200}(a) directly.
        let mut ctx = chain_ctx();
        let a = ctx.instance_by_name("a", 0);
        let ak = ctx.col(a, "a_key");
        let tight = PlanNode::scan(a).select(Predicate::on(ak, Constraint::le(100)));
        let loose = PlanNode::scan(a).select(Predicate::on(ak, Constraint::le(200)));
        let mut memo = Memo::new(ctx);
        let gt = memo.insert_plan(&tight);
        let gl = memo.insert_plan(&loose);
        expand(&mut memo, &RuleSet::default());
        let derives = memo.group_exprs(gt).any(|e| {
            memo.expr(e)
                .children
                .iter()
                .any(|&c| memo.find(c) == memo.find(gl))
        });
        assert!(derives, "tight select must be derivable from the loose one");
    }

    #[test]
    fn aggregate_subsumption_derives_coarse_from_fine() {
        let mut ctx = chain_ctx();
        let a = ctx.instance_by_name("a", 0);
        let ax = ctx.col(a, "a_x");
        let akey = ctx.col(a, "a_key");
        let s_fine = ctx.add_synth("sum_fine", ColumnStats::new(500.0, 0, 100_000), 8);
        let s_coarse = ctx.add_synth("sum_coarse", ColumnStats::new(10.0, 0, 100_000), 8);
        let fine = PlanNode::scan(a).aggregate(AggSpec::new(
            vec![ax, akey],
            vec![AggCall {
                func: AggFunc::Sum,
                input: akey,
                output: s_fine,
            }],
        ));
        let coarse = PlanNode::scan(a).aggregate(AggSpec::new(
            vec![ax],
            vec![AggCall {
                func: AggFunc::Sum,
                input: akey,
                output: s_coarse,
            }],
        ));
        let mut memo = Memo::new(ctx);
        let gf = memo.insert_plan(&fine);
        let gc = memo.insert_plan(&coarse);
        expand(&mut memo, &RuleSet::default());
        let derives = memo.group_exprs(gc).any(|e| {
            memo.expr(e)
                .children
                .iter()
                .any(|&c| memo.find(c) == memo.find(gf))
        });
        assert!(derives, "coarse aggregate must re-aggregate the fine one");
    }

    #[test]
    fn expansion_is_idempotent() {
        let mut ctx = chain_ctx();
        let q = chain3(&mut ctx);
        let mut memo = Memo::new(ctx);
        memo.insert_plan(&q);
        let s1 = expand(&mut memo, &RuleSet::default());
        let s2 = expand(&mut memo, &RuleSet::default());
        assert_eq!(s1.exprs, s2.exprs);
        assert_eq!(s1.groups, s2.groups);
        assert_eq!(s2.passes, 1);
    }

    #[test]
    fn four_way_chain_generates_bushy_space() {
        let mut ctx = chain_ctx();
        let a = ctx.instance_by_name("a", 0);
        let b = ctx.instance_by_name("b", 0);
        let c = ctx.instance_by_name("c", 0);
        let d = ctx.instance_by_name("d", 0);
        let p_ab = Predicate::join(ctx.col(a, "a_next"), ctx.col(b, "b_key"));
        let p_bc = Predicate::join(ctx.col(b, "b_next"), ctx.col(c, "c_key"));
        let p_cd = Predicate::join(ctx.col(c, "c_next"), ctx.col(d, "d_key"));
        let q = PlanNode::scan(a)
            .join(PlanNode::scan(b), p_ab)
            .join(PlanNode::scan(c), p_bc)
            .join(PlanNode::scan(d), p_cd);
        let mut memo = Memo::new(ctx);
        let root = memo.insert_plan(&q);
        expand(&mut memo, &RuleSet::joins_only());
        // Chain a-b-c-d: connected subsets {ab, bc, cd, abc, bcd, abcd} plus
        // 4 scans = 10 groups.
        assert_eq!(memo.n_groups(), 10);
        // Root group exprs are joins of *group pairs*: ABC⋈D, AB⋈CD, A⋈BCD.
        assert_eq!(memo.group_exprs(root).count(), 3);
        // The 3-subchain groups each hold both shapes, giving the full
        // bushy space of 5 plan shapes overall.
        let abc = memo
            .group_children(root)
            .into_iter()
            .find(|&g| {
                memo.props(g).leaves.len() == 3
                    && memo.group_exprs(g).count() > 0
                    && memo
                        .group_exprs(g)
                        .all(|e| !matches!(memo.expr(e).op, LogicalOp::Scan(_)))
            })
            .expect("3-way subchain group");
        assert_eq!(memo.group_exprs(abc).count(), 2);
    }
}
