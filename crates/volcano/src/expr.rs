//! Scalar predicates over `i64`-encoded domains.
//!
//! Predicates are conjunctions, normalized into per-column [`Constraint`]s
//! plus a set of equi-join atoms. Normalization is what keeps group
//! cardinalities consistent across alternative derivations: the subsumption
//! path `σ_{a=5}(σ_{a∈{5,10}}(R))` normalizes to the same constraint set as
//! the direct `σ_{a=5}(R)`, so both land in the same equivalence class with
//! the same estimated cardinality.

use std::collections::BTreeMap;

use mqo_catalog::ColumnStats;

use crate::context::ColId;

/// A per-column constraint: an optional IN-list (equality is a 1-element
/// list) and optional inclusive bounds. Semantics: conjunction of all parts.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Constraint {
    /// `col IN {values}` — sorted, deduplicated. `Some(vec![])` means
    /// unsatisfiable.
    pub in_list: Option<Vec<i64>>,
    /// Lower bound: `col >= lo`.
    pub lo: Option<i64>,
    /// Upper bound: `col <= hi`.
    pub hi: Option<i64>,
}

impl Constraint {
    /// `col = v`.
    pub fn eq(v: i64) -> Self {
        Constraint {
            in_list: Some(vec![v]),
            lo: None,
            hi: None,
        }
    }

    /// `col IN {vs}`.
    pub fn in_list(mut vs: Vec<i64>) -> Self {
        vs.sort_unstable();
        vs.dedup();
        Constraint {
            in_list: Some(vs),
            lo: None,
            hi: None,
        }
    }

    /// `lo <= col <= hi` (either side optional).
    pub fn range(lo: Option<i64>, hi: Option<i64>) -> Self {
        Constraint {
            in_list: None,
            lo,
            hi,
        }
    }

    /// `col >= v`.
    pub fn ge(v: i64) -> Self {
        Self::range(Some(v), None)
    }

    /// `col <= v`.
    pub fn le(v: i64) -> Self {
        Self::range(None, Some(v))
    }

    /// Conjunction of two constraints on the same column, normalized.
    pub fn intersect(&self, other: &Self) -> Self {
        let lo = match (self.lo, other.lo) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        let hi = match (self.hi, other.hi) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let in_list = match (&self.in_list, &other.in_list) {
            (Some(a), Some(b)) => {
                let mut out: Vec<i64> = a.iter().filter(|v| b.contains(v)).copied().collect();
                out.dedup();
                Some(out)
            }
            (Some(a), None) => Some(a.clone()),
            (None, Some(b)) => Some(b.clone()),
            (None, None) => None,
        };
        Constraint { in_list, lo, hi }.normalized()
    }

    /// Disjunctive hull: the loosest constraint implied by `self OR other`
    /// (used to build subsumer nodes; a superset of the union is fine, the
    /// consumer re-applies its own predicate).
    pub fn hull(&self, other: &Self) -> Self {
        match (&self.in_list, &other.in_list) {
            (Some(a), Some(b))
                if self.lo.is_none()
                    && self.hi.is_none()
                    && other.lo.is_none()
                    && other.hi.is_none() =>
            {
                let mut vs = a.clone();
                vs.extend_from_slice(b);
                Constraint::in_list(vs)
            }
            _ => {
                // Fall back to an interval hull.
                let (slo, shi) = self.as_interval();
                let (olo, ohi) = other.as_interval();
                let lo = match (slo, olo) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    _ => None,
                };
                let hi = match (shi, ohi) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    _ => None,
                };
                Constraint::range(lo, hi)
            }
        }
    }

    /// The interval this constraint fits in.
    fn as_interval(&self) -> (Option<i64>, Option<i64>) {
        match &self.in_list {
            Some(vs) if !vs.is_empty() => (Some(vs[0]), Some(*vs.last().expect("non-empty"))),
            Some(_) => (Some(0), Some(-1)), // unsatisfiable: empty interval
            None => (self.lo, self.hi),
        }
    }

    /// Folds bounds into the IN-list (if any) and detects unsatisfiability.
    pub fn normalized(mut self) -> Self {
        if let Some(vs) = &mut self.in_list {
            vs.retain(|v| self.lo.is_none_or(|lo| *v >= lo) && self.hi.is_none_or(|hi| *v <= hi));
            self.lo = None;
            self.hi = None;
        }
        self
    }

    /// Whether the constraint admits no values.
    pub fn is_unsatisfiable(&self) -> bool {
        match &self.in_list {
            Some(vs) => vs.is_empty(),
            None => matches!((self.lo, self.hi), (Some(lo), Some(hi)) if lo > hi),
        }
    }

    /// Whether `self` implies `other` (every value satisfying `self`
    /// satisfies `other`). Conservative: may return `false` on hard cases.
    pub fn implies(&self, other: &Self) -> bool {
        match (&self.in_list, &other.in_list) {
            (Some(a), Some(b)) => a.iter().all(|v| b.contains(v)),
            (Some(a), None) => a
                .iter()
                .all(|v| other.lo.is_none_or(|lo| *v >= lo) && other.hi.is_none_or(|hi| *v <= hi)),
            (None, Some(_)) => false,
            (None, None) => {
                other
                    .lo
                    .is_none_or(|olo| self.lo.is_some_and(|slo| slo >= olo))
                    && other
                        .hi
                        .is_none_or(|ohi| self.hi.is_some_and(|shi| shi <= ohi))
            }
        }
    }

    /// Selectivity under the uniform model given the column's base stats.
    pub fn selectivity(&self, stats: &ColumnStats) -> f64 {
        if self.is_unsatisfiable() {
            return 0.0;
        }
        match &self.in_list {
            Some(vs) => stats.in_selectivity(vs),
            None => {
                let lo_sel = match self.lo {
                    // col >= v  ≡  col > v-1 over integer domains.
                    Some(v) => stats.gt_selectivity(v - 1),
                    None => 1.0,
                };
                let hi_sel = match self.hi {
                    Some(v) => stats.lt_selectivity(v + 1),
                    None => 1.0,
                };
                // Overlap of the two half-ranges.
                (lo_sel + hi_sel - 1.0).clamp(0.0, 1.0)
            }
        }
    }
}

/// A normalized conjunction: per-column constraints plus equi-join pairs.
///
/// The `Ord` impl is purely structural (derived); the memo uses it to give
/// join children a deterministic canonical order without formatting or
/// cloning anything.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Predicate {
    /// Per-column constraints (normalized).
    pub constraints: BTreeMap<ColId, Constraint>,
    /// Equi-join atoms `left = right`, stored with `left < right`.
    pub equi: Vec<(ColId, ColId)>,
}

impl Predicate {
    /// The empty (always-true) predicate.
    pub fn none() -> Self {
        Self::default()
    }

    /// A single-column predicate.
    pub fn on(col: ColId, c: Constraint) -> Self {
        let mut p = Self::default();
        p.add_constraint(col, c);
        p
    }

    /// A single equi-join predicate.
    pub fn join(a: ColId, b: ColId) -> Self {
        let mut p = Self::default();
        p.add_equi(a, b);
        p
    }

    /// Conjoins a per-column constraint.
    pub fn add_constraint(&mut self, col: ColId, c: Constraint) {
        let entry = self.constraints.entry(col).or_default();
        *entry = if *entry == Constraint::default() {
            c.normalized()
        } else {
            entry.intersect(&c)
        };
    }

    /// Conjoins an equi-join atom (canonicalized, deduplicated).
    pub fn add_equi(&mut self, a: ColId, b: ColId) {
        assert_ne!(a, b, "equi-join atom must relate distinct columns");
        let pair = if a < b { (a, b) } else { (b, a) };
        if let Err(pos) = self.equi.binary_search(&pair) {
            self.equi.insert(pos, pair);
        }
    }

    /// Conjunction of two predicates, normalized.
    pub fn and(&self, other: &Self) -> Self {
        let mut out = self.clone();
        for (col, c) in &other.constraints {
            out.add_constraint(*col, c.clone());
        }
        for &(a, b) in &other.equi {
            out.add_equi(a, b);
        }
        out
    }

    /// Whether this predicate has no atoms.
    pub fn is_trivial(&self) -> bool {
        self.constraints.is_empty() && self.equi.is_empty()
    }

    /// Whether any constraint is unsatisfiable.
    pub fn is_unsatisfiable(&self) -> bool {
        self.constraints.values().any(Constraint::is_unsatisfiable)
    }

    /// All columns mentioned.
    pub fn columns(&self) -> impl Iterator<Item = ColId> + '_ {
        self.constraints
            .keys()
            .copied()
            .chain(self.equi.iter().flat_map(|&(a, b)| [a, b]))
    }

    /// The atoms of `self` not already implied by `applied`: the residual a
    /// consumer must still apply after reading a subsumer node.
    pub fn residual_after(&self, applied: &Predicate) -> Predicate {
        let mut out = Predicate::default();
        for (col, c) in &self.constraints {
            match applied.constraints.get(col) {
                Some(ac) if ac.implies(c) => {}
                _ => out.add_constraint(*col, c.clone()),
            }
        }
        for &(a, b) in &self.equi {
            if !applied.equi.contains(&(a, b)) {
                out.add_equi(a, b);
            }
        }
        out
    }

    /// Whether `self` implies `other` column-by-column.
    pub fn implies(&self, other: &Predicate) -> bool {
        other
            .constraints
            .iter()
            .all(|(col, oc)| self.constraints.get(col).is_some_and(|sc| sc.implies(oc)))
            && other.equi.iter().all(|pair| self.equi.contains(pair))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ColId;

    fn col(i: u32) -> ColId {
        ColId::synth(i)
    }

    #[test]
    fn constraint_eq_and_range_selectivity() {
        let stats = ColumnStats::new(100.0, 0, 999);
        assert!((Constraint::eq(5).selectivity(&stats) - 0.01).abs() < 1e-12);
        let r = Constraint::range(Some(0), Some(499));
        assert!((r.selectivity(&stats) - 0.5).abs() < 0.01);
        let half_open = Constraint::ge(500);
        assert!((half_open.selectivity(&stats) - 0.5).abs() < 0.01);
    }

    #[test]
    fn constraint_intersection() {
        let a = Constraint::range(Some(0), Some(100));
        let b = Constraint::range(Some(50), Some(200));
        let i = a.intersect(&b);
        assert_eq!(i.lo, Some(50));
        assert_eq!(i.hi, Some(100));

        let e = Constraint::in_list(vec![10, 60, 150]);
        let j = e.intersect(&i);
        assert_eq!(j.in_list, Some(vec![60]));
    }

    #[test]
    fn constraint_unsat() {
        let a = Constraint::eq(5).intersect(&Constraint::eq(7));
        assert!(a.is_unsatisfiable());
        let b = Constraint::range(Some(10), Some(5));
        assert!(b.is_unsatisfiable());
    }

    #[test]
    fn constraint_hull_of_eqs_is_in_list() {
        let h = Constraint::eq(5).hull(&Constraint::eq(9));
        assert_eq!(h.in_list, Some(vec![5, 9]));
    }

    #[test]
    fn constraint_hull_of_ranges_is_interval_hull() {
        let a = Constraint::range(Some(0), Some(10));
        let b = Constraint::range(Some(20), Some(30));
        let h = a.hull(&b);
        assert_eq!((h.lo, h.hi), (Some(0), Some(30)));
    }

    #[test]
    fn implication() {
        assert!(Constraint::eq(5).implies(&Constraint::in_list(vec![5, 9])));
        assert!(!Constraint::in_list(vec![5, 9]).implies(&Constraint::eq(5)));
        assert!(Constraint::range(Some(5), Some(7)).implies(&Constraint::range(Some(0), Some(10))));
        assert!(!Constraint::range(Some(0), Some(10)).implies(&Constraint::range(Some(5), Some(7))));
        assert!(Constraint::eq(5).implies(&Constraint::range(Some(0), Some(10))));
    }

    #[test]
    fn predicate_and_normalizes_same_column() {
        let p1 = Predicate::on(col(0), Constraint::range(None, Some(10)));
        let p2 = Predicate::on(col(0), Constraint::range(None, Some(5)));
        let conj = p1.and(&p2);
        assert_eq!(conj.constraints[&col(0)].hi, Some(5));
        assert_eq!(conj.constraints.len(), 1);
    }

    #[test]
    fn predicate_residual() {
        // Reader predicate a=5 over subsumer a IN {5, 9}: residual keeps a=5.
        let reader = Predicate::on(col(0), Constraint::eq(5));
        let subsumer = Predicate::on(col(0), Constraint::in_list(vec![5, 9]));
        let residual = reader.residual_after(&subsumer);
        assert_eq!(residual.constraints[&col(0)], Constraint::eq(5));
        // Reader a<=10 over subsumer a<=10: nothing left.
        let r2 = Predicate::on(col(0), Constraint::le(10));
        assert!(r2.residual_after(&r2).is_trivial());
    }

    #[test]
    fn equi_atoms_canonicalized() {
        let mut p = Predicate::none();
        p.add_equi(col(3), col(1));
        p.add_equi(col(1), col(3));
        assert_eq!(p.equi, vec![(col(1), col(3))]);
    }

    #[test]
    fn predicate_implies() {
        let tight = Predicate::on(col(0), Constraint::eq(5)).and(&Predicate::join(col(1), col(2)));
        let loose = Predicate::on(col(0), Constraint::in_list(vec![5, 6]));
        assert!(tight.implies(&loose));
        assert!(!loose.implies(&tight));
    }
}
