//! Serving layer: a live MQO service under concurrent admission.
//!
//! Builds the batched TPCD workload minus its last two queries, wraps the
//! batch in an [`MqoService`], and then drives the three roles the
//! serving layer separates:
//!
//! * **writers** — two threads submit the held-back queries concurrently;
//!   the single service writer coalesces simultaneous admissions into one
//!   optimization round (flat combining) and publishes a fresh immutable
//!   [`EngineState`] snapshot per round;
//! * **readers** — a thread keeps optimizing against the snapshot it took
//!   *before* the writers started. Snapshots are immutable: the reader's
//!   answers are unaffected by commits landing next door;
//! * **maintenance** — a benefit-ranked materialization cache and
//!   re-baselining (history compaction past a watermark) run inside the
//!   writer's round, so they never block readers either.
//!
//! Run with `cargo run --release --example serve`.

use provable_mqo::prelude::*;

fn main() {
    let w = mqo_tpcd::batched(4, 1.0);
    let mut queries = w.queries;
    let arrivals = queries.split_off(queries.len() - 2);

    // The batch editor becomes a service: the one writer lives behind the
    // service lock, and every published snapshot is an immutable
    // `Arc<EngineState>` readers hold for as long as they like.
    let service = Session::builder()
        .context(w.ctx)
        .queries(queries)
        .cost_model(DiskCostModel::paper())
        .build()
        .serve_with(ServeConfig {
            strategy: Strategy::MarginalGreedy,
            // Re-baseline once tombstoned history outgrows this.
            history_watermark: 64,
            // Keep the 4 highest-marginal-benefit materializations warm.
            cache_capacity: 4,
            ..ServeConfig::default()
        });

    let before = service.snapshot();
    let base_report = service.run();
    println!(
        "base batch : {} queries, universe {}, MarginalGreedy cost {:>12.0}",
        before.n_queries(),
        before.universe_size(),
        base_report.total_cost,
    );

    let reader_cost = std::thread::scope(|s| {
        for q in &arrivals {
            let service = &service;
            s.spawn(move || {
                let ticket = service.submit_query(q.clone());
                println!("admitted   : {ticket:?} (snapshot already published)");
            });
        }
        // Concurrent reader pinned to the pre-admission snapshot: commits
        // landing on the service cannot move its answers.
        s.spawn(|| {
            before
                .run(Strategy::MarginalGreedy, MqoConfig::default())
                .total_cost
        })
        .join()
        .expect("reader thread")
    });
    assert_eq!(reader_cost, base_report.total_cost);
    println!("reader     : old snapshot still answers {reader_cost:>12.0}");

    let after = service.snapshot();
    let report = service.run();
    println!(
        "served     : {} queries, universe {}, MarginalGreedy cost {:>12.0}",
        after.n_queries(),
        after.universe_size(),
        report.total_cost,
    );
    println!(
        "hot cache  : {} materializations ranked by marginal benefit",
        service.cached_materializations().len()
    );

    let stats = service.stats();
    println!(
        "stats      : {} rounds for {} admissions ({} coalesced), {} compactions",
        stats.rounds, stats.admitted, stats.coalesced, stats.compactions
    );

    // The service hands the batch editor back; extraction and rendering
    // work as on any OptimizedBatch.
    let batch = service.finish();
    println!(
        "\nconsolidated plan:\n{}",
        report.plan.render(batch.batch())
    );
}
