//! The UNSM toolkit stand-alone: Profitted Max Coverage (Problem 1).
//!
//! Demonstrates the abstract side of the paper without any database
//! machinery: builds hardness-style Profitted Max Coverage instances,
//! computes the canonical decomposition of Proposition 1, runs
//! MarginalGreedy / LazyMarginalGreedy / double greedy / exhaustive search,
//! and checks the Theorem 1 guarantee.
//!
//! Run with `cargo run --example submodular_playground`.

use mqo_submod::algorithms::double_greedy::double_greedy;
use mqo_submod::algorithms::exhaustive::exhaustive_max;
use mqo_submod::algorithms::lazy::lazy_marginal_greedy;
use mqo_submod::algorithms::marginal_greedy::{marginal_greedy, Config};
use mqo_submod::bitset::BitSet;
use mqo_submod::bounds::{theorem1_factor, theorem1_lower_bound};
use mqo_submod::decompose::Decomposition;
use mqo_submod::function::SetFunction;
use mqo_submod::instances::profitted::ProfittedMaxCoverage;

fn main() {
    for (blocks, block_size, redundant, gamma) in [(3, 4, 2, 2.0), (4, 3, 1, 1.0), (2, 5, 3, 0.5)] {
        let inst = ProfittedMaxCoverage::hard_instance(blocks, block_size, redundant, gamma);
        let n = inst.universe();
        let full = BitSet::full(n);
        let decomp = Decomposition::canonical(&inst);

        let eager = marginal_greedy(&inst, &decomp, &full, Config::default());
        let lazy = lazy_marginal_greedy(&inst, &decomp, &full, Config::default());
        let dg = double_greedy(&inst, &full);
        let (opt_set, opt_val) = exhaustive_max(&inst, &full);

        let c_opt = decomp.cost_of(&opt_set);
        let factor = theorem1_factor(opt_val, c_opt);
        let bound = theorem1_lower_bound(opt_val, c_opt);

        println!(
            "γ={gamma:>3}  n={n:>2}  optimum {opt_val:.4}  \
             MarginalGreedy {:.4} (lazy: {:.4}, {} vs {} evals)  \
             DoubleGreedy {:.4}",
            eager.value, lazy.value, lazy.evaluations, eager.evaluations, dg.value
        );
        println!(
            "       Theorem 1 factor {factor:.4} → guaranteed ≥ {bound:.4}; \
             achieved/optimal = {:.4}",
            eager.value / opt_val
        );
        assert!(eager.value >= bound - 1e-9, "Theorem 1 must hold");
        assert_eq!(eager.set, lazy.set, "lazy ≡ eager");
    }
}
