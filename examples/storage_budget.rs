//! Materialization under a storage budget (Section 5.3).
//!
//! A cardinality constraint `k` caps how many subexpressions may be
//! materialized. The paper adapts MarginalGreedy by stopping after `k`
//! picks and prunes the candidate universe via Theorem 4 — provably
//! without changing the answer. This example sweeps `k` on a batched
//! workload and shows the benefit curve flattening, plus the Theorem 4
//! equivalence at every budget.
//!
//! Run with `cargo run --release --example storage_budget`.

use provable_mqo::prelude::*;

fn main() {
    let w = mqo_tpcd::batched(4, 1.0);
    let session = Session::builder()
        .context(w.ctx)
        .queries(w.queries)
        .cost_model(DiskCostModel::paper())
        .build();
    let volcano = session.run(Strategy::Volcano);
    println!(
        "BQ4 at SF 1: {} shareable nodes, Volcano cost {:.0}\n",
        session.universe_size(),
        volcano.total_cost
    );
    println!(
        "{:>3} {:>14} {:>12} {:>10}  Theorem 4",
        "k", "cost", "benefit", "used"
    );
    for k in [0usize, 1, 2, 3, 4, 6, 8] {
        let constrained = session.run(Strategy::CardinalityMarginalGreedy {
            k,
            reduce_universe: false,
        });
        let pruned = session.run(Strategy::CardinalityMarginalGreedy {
            k,
            reduce_universe: true,
        });
        assert_eq!(
            constrained.materialized, pruned.materialized,
            "Theorem 4: universe reduction must not change the answer"
        );
        println!(
            "{:>3} {:>14.0} {:>12.0} {:>10}  same set with pruning ✓",
            k,
            constrained.total_cost,
            constrained.benefit,
            constrained.materialized.len(),
        );
    }
    let unconstrained = session.run(Strategy::MarginalGreedy);
    println!(
        "\nunconstrained MarginalGreedy: cost {:.0}, {} nodes",
        unconstrained.total_cost,
        unconstrained.materialized.len()
    );
}
