//! Stand-alone TPCD queries — the Experiment 2 workload.
//!
//! Single queries whose own structure contains common subexpressions:
//! Q2 (correlated nested subquery), Q2-D (decorrelated into a batch), Q11
//! (per-part value vs. scalar total over the same join), Q15 (revenue view
//! used as join input and under a scalar MAX). Multi-query optimization
//! pays off even for a single query — the paper's point in Section 1.
//!
//! Run with `cargo run --release --example standalone_tpcd`.

use mqo_core::batch::BatchDag;
use mqo_core::consolidated::ConsolidatedPlan;
use mqo_core::strategies::{optimize, Strategy};
use mqo_volcano::cost::DiskCostModel;
use mqo_volcano::rules::RuleSet;

fn main() {
    let cm = DiskCostModel::paper();
    for name in mqo_tpcd::STANDALONE_NAMES {
        let w = mqo_tpcd::standalone(name, 1.0);
        let batch = BatchDag::build(w.ctx, &w.queries, &RuleSet::default());
        let volcano = optimize(&batch, &cm, Strategy::Volcano);
        let greedy = optimize(&batch, &cm, Strategy::Greedy);
        let marginal = optimize(&batch, &cm, Strategy::MarginalGreedy);
        println!(
            "{name:5}  volcano {:>10.0}  greedy {:>10.0} ({:>4.1}%)  marginal {:>10.0} ({:>4.1}%)",
            volcano.total_cost,
            greedy.total_cost,
            greedy.improvement_pct(),
            marginal.total_cost,
            marginal.improvement_pct(),
        );
        if name == "Q15" {
            // Show the consolidated artifact for the most illustrative case:
            // the revenue view computed once, read twice.
            let plan = ConsolidatedPlan::extract(&batch, &cm, &greedy.materialized);
            println!("\nQ15 consolidated plan:\n{}", plan.render(&batch));
        }
    }
}
