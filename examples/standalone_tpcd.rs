//! Stand-alone TPCD queries — the Experiment 2 workload.
//!
//! Single queries whose own structure contains common subexpressions:
//! Q2 (correlated nested subquery), Q2-D (decorrelated into a batch), Q11
//! (per-part value vs. scalar total over the same join), Q15 (revenue view
//! used as join input and under a scalar MAX). Multi-query optimization
//! pays off even for a single query — the paper's point in Section 1.
//!
//! Run with `cargo run --release --example standalone_tpcd`.

use provable_mqo::prelude::*;

fn main() {
    for name in mqo_tpcd::STANDALONE_NAMES {
        let w = mqo_tpcd::standalone(name, 1.0);
        let session = Session::builder()
            .context(w.ctx)
            .queries(w.queries)
            .cost_model(DiskCostModel::paper())
            .build();
        let volcano = session.run(Strategy::Volcano);
        let greedy = session.run(Strategy::Greedy);
        let marginal = session.run(Strategy::MarginalGreedy);
        println!(
            "{name:5}  volcano {:>10.0}  greedy {:>10.0} ({:>4.1}%)  marginal {:>10.0} ({:>4.1}%)",
            volcano.total_cost,
            greedy.total_cost,
            greedy.improvement_pct(),
            marginal.total_cost,
            marginal.improvement_pct(),
        );
        if name == "Q15" {
            // Show the consolidated artifact for the most illustrative case:
            // the revenue view computed once, read twice. Every report
            // carries the extracted plan — no separate extraction call.
            println!(
                "\nQ15 consolidated plan:\n{}",
                greedy.plan.render(session.batch())
            );
        }
    }
}
