//! Batched TPCD queries — the Experiment 1 workload at laptop scale.
//!
//! Runs composite queries BQ1..BQ4 at scale factor 1 (the paper's 1 GB
//! database) comparing stand-alone Volcano against Greedy and
//! MarginalGreedy, and prints which equivalence nodes each strategy chose
//! to materialize.
//!
//! Run with `cargo run --release --example batched_tpcd`.

use mqo_core::batch::BatchDag;
use mqo_core::strategies::{optimize, Strategy};
use mqo_volcano::cost::DiskCostModel;
use mqo_volcano::rules::RuleSet;

fn main() {
    let cm = DiskCostModel::paper();
    for i in 1..=4 {
        let w = mqo_tpcd::batched(i, 1.0);
        let name = w.name.clone();
        let batch = BatchDag::build(w.ctx, &w.queries, &RuleSet::default());
        println!(
            "\n=== {name}: {} queries, {} groups, {} shareable nodes ===",
            2 * i,
            batch.expansion.groups,
            batch.universe_size()
        );
        for s in [
            Strategy::Volcano,
            Strategy::Greedy,
            Strategy::MarginalGreedy,
        ] {
            let r = optimize(&batch, &cm, s);
            println!(
                "{:16} cost {:>12.0} ms   improvement {:>5.1}%   {} materialized   ({} bc calls, {:?})",
                r.strategy,
                r.total_cost,
                r.improvement_pct(),
                r.materialized.len(),
                r.bc_calls,
                r.opt_time,
            );
            for &g in &r.materialized {
                let props = batch.memo.props(g);
                println!(
                    "    - group {:>4}: {} leaves, {:>12.0} rows",
                    g.0,
                    props.leaves.len(),
                    props.rows
                );
            }
        }
    }
}
