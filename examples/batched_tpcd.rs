//! Batched TPCD queries — the Experiment 1 workload at laptop scale.
//!
//! Runs composite queries BQ1..BQ4 at scale factor 1 (the paper's 1 GB
//! database) comparing stand-alone Volcano against Greedy and
//! MarginalGreedy, and prints which equivalence nodes each strategy chose
//! to materialize.
//!
//! Run with `cargo run --release --example batched_tpcd`.

use provable_mqo::prelude::*;

fn main() {
    for i in 1..=4 {
        let w = mqo_tpcd::batched(i, 1.0);
        let name = w.name.clone();
        let session = Session::builder()
            .context(w.ctx)
            .queries(w.queries)
            .cost_model(DiskCostModel::paper())
            .build();
        let batch = session.batch();
        println!(
            "\n=== {name}: {} queries, {} groups, {} shareable nodes ===",
            2 * i,
            batch.expansion().groups,
            session.universe_size()
        );
        for r in session.run_all(&[
            Strategy::Volcano,
            Strategy::Greedy,
            Strategy::MarginalGreedy,
        ]) {
            println!(
                "{:16} cost {:>12.0} ms   improvement {:>5.1}%   {} materialized   ({} bc calls, {:?})",
                r.strategy,
                r.total_cost,
                r.improvement_pct(),
                r.materialized.len(),
                r.bc_calls,
                r.opt_time,
            );
            for &g in &r.materialized {
                let props = batch.memo().props(g);
                println!(
                    "    - group {:>4}: {} leaves, {:>12.0} rows",
                    g.0,
                    props.leaves.len(),
                    props.rows
                );
            }
        }
    }
}
