//! Quickstart: multi-query optimization in ten lines.
//!
//! Builds the motivating example of the paper (Example 1): two queries
//! `A ⋈ B ⋈ C` and `B ⋈ C ⋈ D` whose locally optimal plans share nothing,
//! yet whose consolidated plan computes `B ⋈ C` once. Under the paper's
//! illustrative unit costs the totals are 460 (no sharing) vs 370.
//!
//! Run with `cargo run --example quickstart`.

use provable_mqo::prelude::*;

fn main() {
    // 1. A catalog with four relations.
    let mut cat = Catalog::new();
    for name in ["a", "b", "c", "d"] {
        cat.add_table(
            TableBuilder::new(name, 1000.0)
                .key_column(format!("{name}_key"), 8)
                .column(format!("{name}_fk"), 1000.0, (0, 999), 8)
                .primary_key(&[&format!("{name}_key")])
                .build(),
        );
    }

    // 2. A shared context and the two queries.
    let mut ctx = DagContext::new(cat);
    let a = ctx.instance_by_name("a", 0);
    let b = ctx.instance_by_name("b", 0);
    let c = ctx.instance_by_name("c", 0);
    let d = ctx.instance_by_name("d", 0);
    let p_ab = Predicate::join(ctx.col(a, "a_key"), ctx.col(b, "b_fk"));
    let p_bc = Predicate::join(ctx.col(b, "b_key"), ctx.col(c, "c_fk"));
    let p_bd = Predicate::join(ctx.col(b, "b_key"), ctx.col(d, "d_fk"));
    let q1 = PlanNode::scan(a)
        .join(PlanNode::scan(b), p_ab)
        .join(PlanNode::scan(c), p_bc.clone());
    let q2 = PlanNode::scan(b)
        .join(PlanNode::scan(c), p_bc)
        .join(PlanNode::scan(d), p_bd);

    // 3. One Session owns the whole pipeline: DAG expansion +
    //    common-subexpression unification, node selection, and
    //    consolidated-plan extraction.
    let batch = Session::builder()
        .context(ctx)
        .queries([q1, q2])
        .rules(RuleSet::joins_only())
        .cost_model(UnitCostModel)
        .build();
    let volcano = batch.run(Strategy::Volcano);
    let mqo = batch.run(Strategy::MarginalGreedy);

    println!("stand-alone Volcano cost : {}", volcano.total_cost);
    println!("MarginalGreedy cost      : {}", mqo.total_cost);
    println!(
        "materialized nodes       : {} (the shared B ⋈ C)",
        mqo.materialized.len()
    );
    println!("benefit                  : {}", mqo.benefit);
    println!("\nconsolidated plan:\n{}", mqo.plan.render(batch.batch()));
    assert_eq!(volcano.total_cost, 460.0);
    assert_eq!(mqo.total_cost, 370.0);
}
