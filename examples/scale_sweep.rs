//! The scale-tier workload generator through the `Session` prelude.
//!
//! Generates seeded chain/star/clique/snowflake batches
//! (`mqo_tpcd::workloads`), optimizes each with MarginalGreedy, and then
//! demonstrates the Theorem 4 universe-reduction pre-pass: same plans,
//! smaller ranked candidate universe. Pass `--big` to run the calibrated
//! 10k-candidate chain instance the scale bench records (slow in debug
//! builds; use `--release`).
//!
//! Run with `cargo run --release --example scale_sweep [-- --big]`.

use mqo_tpcd::workloads::{generate, Shape, WorkloadSpec};
use provable_mqo::prelude::*;

fn run_spec(spec: &WorkloadSpec, config: MqoConfig) -> RunReport {
    let w = generate(spec);
    let session = Session::builder()
        .context(w.ctx)
        .queries(w.queries)
        .cost_model(DiskCostModel::paper())
        .config(config)
        .build();
    session.run(Strategy::MarginalGreedy)
}

fn main() {
    let big = std::env::args().any(|a| a == "--big");

    println!("shape      queries  universe  ranked  materialized  improvement");
    for shape in Shape::ALL {
        let spec = if big && shape == Shape::Chain {
            WorkloadSpec::scale_10k(7)
        } else {
            WorkloadSpec::smoke(shape, 7)
        };
        let r = run_spec(&spec, MqoConfig::default());
        println!(
            "{:10} {:>7}  {:>8}  {:>6}  {:>12}  {:>10.1}%",
            shape.name(),
            spec.queries,
            r.universe,
            r.candidates,
            r.materialized.len(),
            r.improvement_pct()
        );
    }

    // The universe-reduction pre-pass: cost-based decomposition plus a
    // materialization budget make Theorem 4 actually prune, and the
    // ranked universe the greedy sees shrinks accordingly.
    let spec = if big {
        WorkloadSpec::scale_10k(7)
    } else {
        WorkloadSpec::smoke(Shape::Chain, 7)
    };
    let budget = 16;
    let off = run_spec(
        &spec,
        MqoConfig {
            decomposition: DecompositionKind::MaterializationCost,
            universe_reduction: false,
            max_materializations: Some(budget),
            ..MqoConfig::default()
        },
    );
    let on = run_spec(
        &spec,
        MqoConfig {
            decomposition: DecompositionKind::MaterializationCost,
            universe_reduction: true,
            max_materializations: Some(budget),
            ..MqoConfig::default()
        },
    );
    println!("\nuniverse-reduction pre-pass (chain, k = {budget}):");
    println!(
        "  off: ranked {:>6} of {:>6}   cost {:>14.0}   bc_calls {:>8}   opt {:?}",
        off.candidates, off.universe, off.total_cost, off.bc_calls, off.opt_time
    );
    println!(
        "  on:  ranked {:>6} of {:>6}   cost {:>14.0}   bc_calls {:>8}   opt {:?}",
        on.candidates, on.universe, on.total_cost, on.bc_calls, on.opt_time
    );
    assert_eq!(
        off.materialized, on.materialized,
        "Theorem 4: the pre-pass must not change the chosen set"
    );
    println!("  chosen sets identical (Theorem 4 holds)");
}
