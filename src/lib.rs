//! `provable-mqo` — a reproduction of *"Efficient and Provable Multi-Query
//! Optimization"* (Kathuria & Sudarshan, PODS 2017).
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`submod`] — unconstrained normalized submodular maximization: the
//!   canonical decomposition (Proposition 1), MarginalGreedy (Algorithm 2)
//!   and its accelerations, Greedy (Algorithm 1), the Theorem 1 bound, and
//!   the Profitted Max Coverage hardness family (Theorem 2).
//! * [`catalog`] — relational catalog and statistics.
//! * [`volcano`] — the Volcano/Cascades optimizer substrate: AND-OR DAG
//!   memo, transformation rules, physical operators, disk cost model.
//! * [`core`] — MQO proper: combined DAG, `bestCost` oracle with
//!   incremental recomputation, materialization benefit, strategies.
//! * [`tpcd`] — the TPCD workload of the experimental section.
//!
//! See `examples/quickstart.rs` for a complete end-to-end example, and the
//! `mqo-bench` crate for the binaries regenerating every figure of the
//! paper.

pub use mqo_catalog as catalog;
pub use mqo_core as core;
pub use mqo_submod as submod;
pub use mqo_tpcd as tpcd;
pub use mqo_volcano as volcano;
