//! `provable-mqo` — a reproduction of *"Efficient and Provable Multi-Query
//! Optimization"* (Kathuria & Sudarshan, PODS 2017).
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`submod`] — unconstrained normalized submodular maximization: the
//!   canonical decomposition (Proposition 1), MarginalGreedy (Algorithm 2)
//!   and its accelerations, Greedy (Algorithm 1), the Theorem 1 bound, and
//!   the Profitted Max Coverage hardness family (Theorem 2).
//! * [`catalog`] — relational catalog and statistics.
//! * [`volcano`] — the Volcano/Cascades optimizer substrate: AND-OR DAG
//!   memo, transformation rules, physical operators, disk cost model.
//! * [`core`] — MQO proper: the [`prelude::Session`] API over the combined
//!   DAG, the `bestCost` oracle with incremental recomputation, the
//!   materialization benefit, the strategies, and arena-based
//!   consolidated-plan extraction.
//! * [`tpcd`] — the TPCD workload of the experimental section.
//!
//! The one-stop entry point is [`prelude`]:
//!
//! ```no_run
//! use provable_mqo::prelude::*;
//!
//! # fn queries() -> (DagContext, Vec<PlanNode>) { unimplemented!() }
//! let (ctx, qs) = queries();
//! let batch = Session::builder()
//!     .context(ctx)
//!     .queries(qs)
//!     .cost_model(DiskCostModel::paper())
//!     .build();
//! let report = batch.run(Strategy::MarginalGreedy);
//! println!("cost {} vs volcano {}", report.total_cost, report.volcano_cost);
//! println!("{}", report.plan.render(batch.batch()));
//! ```
//!
//! See `examples/quickstart.rs` for a complete end-to-end example, and the
//! `mqo-bench` crate for the binaries regenerating every figure of the
//! paper.

#![forbid(unsafe_code)]

pub use mqo_catalog as catalog;
pub use mqo_core as core;
pub use mqo_submod as submod;
pub use mqo_tpcd as tpcd;
pub use mqo_volcano as volcano;

/// Everything needed to build queries, run a [`Session`](prelude::Session),
/// and inspect the resulting consolidated plans — one `use
/// provable_mqo::prelude::*;` away.
///
/// Re-exports, by pipeline stage:
///
/// * **Catalog / context** — [`Catalog`](prelude::Catalog),
///   [`TableBuilder`](prelude::TableBuilder),
///   [`DagContext`](prelude::DagContext).
/// * **Query construction** — [`PlanNode`](prelude::PlanNode),
///   [`Predicate`](prelude::Predicate),
///   [`Constraint`](prelude::Constraint), [`RuleSet`](prelude::RuleSet).
/// * **Cost models** — [`CostModel`](prelude::CostModel),
///   [`DiskCostModel`](prelude::DiskCostModel),
///   [`UnitCostModel`](prelude::UnitCostModel).
/// * **The session** — [`Session`](prelude::Session),
///   [`SessionBuilder`](prelude::SessionBuilder),
///   [`OptimizedBatch`](prelude::OptimizedBatch),
///   [`MqoConfig`](prelude::MqoConfig).
/// * **Results** — [`Strategy`](prelude::Strategy),
///   [`RunReport`](prelude::RunReport),
///   [`ConsolidatedPlan`](prelude::ConsolidatedPlan),
///   [`PhysOp`](prelude::PhysOp), [`PhysPlan`](prelude::PhysPlan),
///   [`GroupId`](prelude::GroupId).
/// * **Serving** — [`MqoService`](prelude::MqoService),
///   [`ServeConfig`](prelude::ServeConfig),
///   [`ServeStats`](prelude::ServeStats),
///   [`PriorityClass`](prelude::PriorityClass),
///   [`EngineState`](prelude::EngineState),
///   [`QueryTicket`](prelude::QueryTicket).
/// * **Fault tolerance** — [`MqoError`](prelude::MqoError),
///   [`PlanFault`](prelude::PlanFault),
///   [`GapCertificate`](prelude::GapCertificate).
pub mod prelude {
    pub use mqo_catalog::{Catalog, TableBuilder};
    pub use mqo_core::{
        BatchDag, ConsolidatedPlan, DecompositionKind, EngineState, GapCertificate, MqoConfig,
        MqoError, MqoService, OptimizedBatch, PlanFault, PriorityClass, QueryTicket, RunReport,
        ServeConfig, ServeStats, Session, SessionBuilder, Strategy,
    };
    pub use mqo_volcano::cost::{CostModel, DiskCostModel, UnitCostModel};
    pub use mqo_volcano::physical::{PhysOp, PhysPlan, SortOrder};
    pub use mqo_volcano::rules::RuleSet;
    pub use mqo_volcano::{Constraint, DagContext, GroupId, PlanNode, Predicate};
}
